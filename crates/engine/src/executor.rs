//! The execution engine: a dataflow scheduler over a fixed worker pool.
//!
//! The paper's run-time environment consists of "a scheduler, an interpreter,
//! and a profiler. The scheduler uses a data-flow graph based scheduling
//! policy, where an operator is scheduled for execution once all its input
//! sources are available. While an interpreter per CPU core executes the
//! scheduled operators, the profiler gathers performance data on an executed
//! operator basis." (§2)
//!
//! [`Engine`] owns the worker pool ("interpreter per CPU core"); queries are
//! submitted with [`Engine::execute`], which performs dependency-counting
//! dataflow scheduling: a node becomes runnable when all its producers have
//! finished and is then pushed onto the shared task queue. Because the queue
//! is shared by *all* concurrently submitted queries, a heavy concurrent
//! workload creates exactly the resource contention the paper studies —
//! plans with more partitions fight for the same workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

use apq_columnar::Catalog;

use crate::chunk::{Chunk, QueryOutput};
use crate::error::{EngineError, Result};
use crate::interpreter::execute_node;
use crate::noise::{NoiseConfig, NoiseInjector};
use crate::plan::{NodeId, Plan};
use crate::profiler::{OperatorProfile, QueryProfile};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads ("interpreters"). The paper's machines have
    /// 32 / 96 hardware threads; experiments here scale this down.
    pub n_workers: usize,
    /// Optional synthetic OS-noise injection (convergence robustness tests).
    pub noise: Option<NoiseConfig>,
    /// Fixed extra latency added to every operator execution, in
    /// microseconds. Used to emulate a platform with slower memory access
    /// (the 4-socket configuration of paper Fig. 17b).
    pub per_operator_overhead_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            noise: None,
            per_operator_overhead_us: 0,
        }
    }
}

impl EngineConfig {
    /// Configuration with an explicit worker count and no noise.
    pub fn with_workers(n_workers: usize) -> Self {
        EngineConfig { n_workers: n_workers.max(1), ..EngineConfig::default() }
    }
}

/// Result of one query execution: the final value plus its profile.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// Canonical result value (comparable across plans of the same query).
    pub output: QueryOutput,
    /// Per-operator and per-query performance data.
    pub profile: QueryProfile,
}

type Task = Box<dyn FnOnce(usize) + Send + 'static>;

/// The shared execution engine (worker pool + task queue).
pub struct Engine {
    config: EngineConfig,
    sender: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
    noise: Option<Arc<NoiseInjector>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n_workers", &self.config.n_workers)
            .field("noise", &self.config.noise)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with the given configuration, spawning the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let (sender, receiver) = unbounded::<Task>();
        let mut workers = Vec::with_capacity(config.n_workers);
        for worker_idx in 0..config.n_workers.max(1) {
            let rx = receiver.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("apq-worker-{worker_idx}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            task(worker_idx);
                        }
                    })
                    .expect("failed to spawn worker thread"),
            );
        }
        let noise = config.noise.clone().map(|c| Arc::new(NoiseInjector::new(c)));
        Engine { config, sender: Some(sender), workers, noise }
    }

    /// Engine with `n` workers and default settings otherwise.
    pub fn with_workers(n: usize) -> Self {
        Engine::new(EngineConfig::with_workers(n))
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.config.n_workers
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Executes a plan against a catalog, blocking until the result is ready.
    ///
    /// May be called concurrently from many client threads; all queries share
    /// the same worker pool.
    pub fn execute(&self, plan: &Plan, catalog: &Arc<Catalog>) -> Result<QueryExecution> {
        plan.validate()?;
        let sender = self.sender.as_ref().ok_or(EngineError::EngineShutDown)?;

        let capacity = plan.capacity();
        let live = plan.node_ids();
        let mut deps: Vec<AtomicUsize> = Vec::with_capacity(capacity);
        for id in 0..capacity {
            let n = if plan.contains(id) { plan.node(id)?.inputs.len() } else { 0 };
            deps.push(AtomicUsize::new(n));
        }

        let state = Arc::new(RunState {
            plan: plan.clone(),
            catalog: Arc::clone(catalog),
            results: Mutex::new(vec![None; capacity]),
            profiles: Mutex::new(vec![None; capacity]),
            deps,
            remaining: AtomicUsize::new(live.len()),
            error: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            started: Instant::now(),
            noise: self.noise.clone(),
            overhead_us: self.config.per_operator_overhead_us,
        });

        // Seed the queue with every node that has no inputs. The check must
        // use the static plan structure (not the atomic dependency counters):
        // workers already run seeded nodes concurrently with this loop and
        // may drive another node's counter to zero before the loop reaches
        // it, which would double-schedule that node.
        for &id in &live {
            if plan.node(id)?.inputs.is_empty() {
                spawn_node(&state, sender, id);
            }
        }

        // Wait for completion (or failure).
        {
            let mut done = state.done.lock();
            while !*done {
                state.done_cv.wait(&mut done);
            }
        }
        if let Some(err) = state.error.lock().clone() {
            return Err(err);
        }

        let root = plan.root().expect("validated plan has a root");
        let root_chunk = state.results.lock()[root]
            .clone()
            .ok_or_else(|| EngineError::InvalidPlan("root node produced no result".to_string()))?;
        let operators: Vec<OperatorProfile> =
            state.profiles.lock().iter().flatten().cloned().collect();
        let profile = QueryProfile {
            wall_time: state.started.elapsed(),
            n_workers: self.config.n_workers,
            operators,
        };
        Ok(QueryExecution { output: root_chunk.to_output(), profile })
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Closing the channel lets the workers drain remaining tasks and exit.
        self.sender.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

struct RunState {
    plan: Plan,
    catalog: Arc<Catalog>,
    results: Mutex<Vec<Option<Chunk>>>,
    profiles: Mutex<Vec<Option<OperatorProfile>>>,
    deps: Vec<AtomicUsize>,
    remaining: AtomicUsize,
    error: Mutex<Option<EngineError>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    started: Instant,
    noise: Option<Arc<NoiseInjector>>,
    overhead_us: u64,
}

impl RunState {
    fn finish(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.done_cv.notify_all();
    }

    fn fail(&self, err: EngineError) {
        {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.finish();
    }
}

fn spawn_node(state: &Arc<RunState>, sender: &Sender<Task>, node: NodeId) {
    let st = Arc::clone(state);
    let snd = sender.clone();
    let _ = sender.send(Box::new(move |worker| run_node(st, snd, node, worker)));
}

fn run_node(state: Arc<RunState>, sender: Sender<Task>, node: NodeId, worker: usize) {
    // A failed sibling already tore the query down; do nothing.
    if state.error.lock().is_some() {
        return;
    }
    let node_ref = match state.plan.node(node) {
        Ok(n) => n.clone(),
        Err(e) => return state.fail(e),
    };

    // Gather the (already materialized) inputs.
    let inputs: Vec<Chunk> = {
        let results = state.results.lock();
        let mut gathered = Vec::with_capacity(node_ref.inputs.len());
        for &input in &node_ref.inputs {
            match results.get(input).and_then(Clone::clone) {
                Some(chunk) => gathered.push(chunk),
                None => {
                    drop(results);
                    return state.fail(EngineError::InvalidPlan(format!(
                        "node {node} was scheduled before its input {input} completed"
                    )));
                }
            }
        }
        gathered
    };

    let start_us = state.started.elapsed().as_micros() as u64;
    let outcome = execute_node(node, &node_ref.spec, &inputs, &state.catalog);
    if state.overhead_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(state.overhead_us));
    }
    if let Some(noise) = &state.noise {
        noise.inject();
    }
    let end_us = state.started.elapsed().as_micros() as u64;

    let chunk = match outcome {
        Ok(chunk) => chunk,
        Err(e) => return state.fail(e),
    };

    {
        let mut profiles = state.profiles.lock();
        profiles[node] = Some(OperatorProfile {
            node,
            name: node_ref.spec.name(),
            start_us,
            duration_us: end_us.saturating_sub(start_us),
            worker,
            rows_out: chunk.rows(),
            bytes_out: chunk.byte_size(),
        });
    }
    {
        let mut results = state.results.lock();
        results[node] = Some(chunk);
    }

    // Wake up consumers whose dependencies are now all satisfied.
    for consumer in state.plan.consumers(node) {
        let edges = state
            .plan
            .node(consumer)
            .map(|c| c.inputs.iter().filter(|&&i| i == node).count())
            .unwrap_or(0);
        if edges == 0 {
            continue;
        }
        let before = state.deps[consumer].fetch_sub(edges, Ordering::AcqRel);
        if before == edges {
            spawn_node(&state, &sender, consumer);
        }
    }

    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        state.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::{ScalarValue, TableBuilder};
    use apq_operators::{AggFunc, CmpOp, Predicate};

    use crate::plan::OperatorSpec;

    fn catalog(rows: usize) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("t")
                .i64_column("a", (0..rows as i64).collect())
                .i64_column("b", (0..rows as i64).map(|v| v * 2).collect())
                .build()
                .unwrap(),
        );
        Arc::new(c)
    }

    fn scan(col: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn { table: "t".into(), column: col.into(), range: RowRange::new(0, rows) }
    }

    /// Serial plan: sum(b) where a < threshold.
    fn filter_sum_plan(rows: usize, threshold: i64) -> Plan {
        let mut p = Plan::new();
        let a = p.add(scan("a", rows), vec![]);
        let sel = p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
        let b = p.add(scan("b", rows), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    #[test]
    fn executes_serial_plan() {
        let engine = Engine::with_workers(2);
        let cat = catalog(1000);
        let plan = filter_sum_plan(1000, 10);
        let exec = engine.execute(&plan, &cat).unwrap();
        // sum of b over a in [0,10) = 2 * (0+..+9) = 90.
        assert_eq!(exec.output, QueryOutput::Scalar(ScalarValue::I64(90)));
        assert_eq!(exec.profile.operators.len(), 6);
        assert!(exec.profile.wall_us() > 0);
        assert!(exec.profile.most_expensive().is_some());
    }

    #[test]
    fn parallel_partitioned_plan_gives_same_answer() {
        let engine = Engine::with_workers(4);
        let cat = catalog(10_000);
        let serial = filter_sum_plan(10_000, 500);
        let serial_out = engine.execute(&serial, &cat).unwrap().output;

        // Hand-built two-partition version of the same query.
        let mut p = Plan::new();
        let a0 = p.add(
            OperatorSpec::ScanColumn { table: "t".into(), column: "a".into(), range: RowRange::new(0, 5_000) },
            vec![],
        );
        let a1 = p.add(
            OperatorSpec::ScanColumn { table: "t".into(), column: "a".into(), range: RowRange::new(5_000, 10_000) },
            vec![],
        );
        let pred = Predicate::cmp(CmpOp::Lt, 500i64);
        let s0 = p.add(OperatorSpec::Select { predicate: pred.clone() }, vec![a0]);
        let s1 = p.add(OperatorSpec::Select { predicate: pred }, vec![a1]);
        let b = p.add(scan("b", 10_000), vec![]);
        let f0 = p.add(OperatorSpec::Fetch, vec![s0, b]);
        let f1 = p.add(OperatorSpec::Fetch, vec![s1, b]);
        let g0 = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![f0]);
        let g1 = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![f1]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![g0, g1]);
        p.set_root(fin);

        let exec = engine.execute(&p, &cat).unwrap();
        assert_eq!(exec.output, serial_out);
        // Both partitions' operators were profiled.
        assert_eq!(exec.profile.operators.len(), 10);
    }

    #[test]
    fn concurrent_queries_share_the_pool() {
        let engine = Arc::new(Engine::with_workers(3));
        let cat = catalog(5_000);
        let mut handles = Vec::new();
        for i in 0..8 {
            let engine = Arc::clone(&engine);
            let cat = Arc::clone(&cat);
            handles.push(std::thread::spawn(move || {
                let plan = filter_sum_plan(5_000, 100 + i);
                engine.execute(&plan, &cat).unwrap().output
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.join().unwrap();
            let threshold = 100 + i as i64;
            let expected: i64 = (0..threshold).map(|v| v * 2).sum();
            assert_eq!(out, QueryOutput::Scalar(ScalarValue::I64(expected)));
        }
    }

    #[test]
    fn execution_errors_are_propagated() {
        let engine = Engine::with_workers(2);
        let cat = catalog(10);
        // Division by zero in a calc node.
        let mut p = Plan::new();
        let a = p.add(scan("a", 10), vec![]);
        let div = p.add(
            OperatorSpec::Calc {
                op: apq_operators::BinaryOp::Div,
                left_scalar: None,
                right_scalar: Some(ScalarValue::I64(0)),
            },
            vec![a],
        );
        p.set_root(div);
        let err = engine.execute(&p, &cat).unwrap_err();
        assert!(matches!(err, EngineError::Operator(_)));

        // Unknown table surfaces as a storage error.
        let mut p = Plan::new();
        let bad = p.add(
            OperatorSpec::ScanColumn { table: "missing".into(), column: "x".into(), range: RowRange::new(0, 1) },
            vec![],
        );
        p.set_root(bad);
        assert!(engine.execute(&p, &cat).is_err());

        // Invalid plans are rejected before execution.
        let p = Plan::new();
        assert!(matches!(engine.execute(&p, &cat), Err(EngineError::InvalidPlan(_))));
    }

    #[test]
    fn noise_and_overhead_inflate_operator_times() {
        let cat = catalog(100);
        let plan = filter_sum_plan(100, 50);
        let quiet = Engine::new(EngineConfig { n_workers: 2, noise: None, per_operator_overhead_us: 0 });
        let slow = Engine::new(EngineConfig {
            n_workers: 2,
            noise: None,
            per_operator_overhead_us: 500,
        });
        let q = quiet.execute(&plan, &cat).unwrap();
        let s = slow.execute(&plan, &cat).unwrap();
        assert_eq!(q.output, s.output);
        assert!(s.profile.total_cpu_us() > q.profile.total_cpu_us() + 1_000);

        let noisy = Engine::new(EngineConfig {
            n_workers: 2,
            noise: Some(NoiseConfig { probability: 1.0, max_delay_us: 300, seed: 7 }),
            per_operator_overhead_us: 0,
        });
        let n = noisy.execute(&plan, &cat).unwrap();
        assert_eq!(n.output, q.output);
    }

    #[test]
    fn engine_debug_and_config() {
        let engine = Engine::with_workers(2);
        assert_eq!(engine.n_workers(), 2);
        assert!(format!("{engine:?}").contains("n_workers"));
        assert_eq!(engine.config().per_operator_overhead_us, 0);
        let default_cfg = EngineConfig::default();
        assert!(default_cfg.n_workers >= 1);
    }
}
