//! The execution engine: a dataflow scheduler over a fixed worker pool.
//!
//! The paper's run-time environment consists of "a scheduler, an interpreter,
//! and a profiler. The scheduler uses a data-flow graph based scheduling
//! policy, where an operator is scheduled for execution once all its input
//! sources are available. While an interpreter per CPU core executes the
//! scheduled operators, the profiler gathers performance data on an executed
//! operator basis." (§2)
//!
//! [`Engine`] owns the worker pool ("interpreter per CPU core"); queries are
//! submitted with [`Engine::execute`], which performs dependency-counting
//! dataflow scheduling: a node becomes runnable when all its producers have
//! finished and is then handed to the engine's [`Scheduler`]. *Which* worker
//! runs it *when* is the scheduler's choice — see [`crate::scheduler`] for
//! the pluggable policies ([`SchedulerPolicy::GlobalQueue`], the seed
//! engine's shared FIFO, and [`SchedulerPolicy::WorkStealing`], per-worker
//! deques with local-first pop). Because the pool is shared by *all*
//! concurrently submitted queries, a heavy concurrent workload creates
//! exactly the resource contention the paper studies; per-task queue-wait
//! times are recorded in the profile so downstream consumers can tell
//! operator cost from scheduler interference.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use apq_columnar::Catalog;

use crate::chunk::{Chunk, QueryOutput};
use crate::error::{EngineError, Result};
use crate::interpreter::execute_node;
use crate::noise::{NoiseConfig, NoiseInjector};
use crate::plan::{NodeId, Plan};
use crate::profiler::{OperatorProfile, QueryProfile};
use crate::scheduler::{
    QueryHandle, Scheduler, SchedulerPolicy, SchedulerStats, Task, TaskContext,
};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads ("interpreters"). The paper's machines have
    /// 32 / 96 hardware threads; experiments here scale this down.
    pub n_workers: usize,
    /// Optional synthetic OS-noise injection (convergence robustness tests).
    pub noise: Option<NoiseConfig>,
    /// Fixed extra latency added to every operator execution, in
    /// microseconds. Used to emulate a platform with slower memory access
    /// (the 4-socket configuration of paper Fig. 17b).
    pub per_operator_overhead_us: u64,
    /// Task-scheduling policy of the worker pool.
    pub scheduler: SchedulerPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            noise: None,
            per_operator_overhead_us: 0,
            scheduler: SchedulerPolicy::default(),
        }
    }
}

impl EngineConfig {
    /// Configuration with an explicit worker count and no noise.
    pub fn with_workers(n_workers: usize) -> Self {
        EngineConfig { n_workers: n_workers.max(1), ..EngineConfig::default() }
    }

    /// Sets the scheduling policy (builder style).
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Per-query submission options: scheduling priority and admitted degree of
/// parallelism (see [`QueryHandle`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Scheduling priority; `> 0` uses the schedulers' priority lane.
    pub priority: u8,
    /// Maximum concurrently executing tasks of this query (`0` = unlimited).
    pub admitted_dop: usize,
}

impl QueryOptions {
    /// Options with an admitted degree of parallelism.
    pub fn with_admitted_dop(dop: usize) -> Self {
        QueryOptions { admitted_dop: dop, ..QueryOptions::default() }
    }

    /// Options with a scheduling priority.
    pub fn with_priority(priority: u8) -> Self {
        QueryOptions { priority, ..QueryOptions::default() }
    }
}

/// Result of one query execution: the final value plus its profile.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// Canonical result value (comparable across plans of the same query).
    pub output: QueryOutput,
    /// Per-operator and per-query performance data.
    pub profile: QueryProfile,
}

/// The shared execution engine (worker pool + pluggable task scheduler).
pub struct Engine {
    config: EngineConfig,
    scheduler: Arc<dyn Scheduler>,
    workers: Vec<JoinHandle<()>>,
    noise: Option<Arc<NoiseInjector>>,
    next_query_id: AtomicU64,
    /// Queries currently inside `execute_with_handle` (all clients).
    in_flight: AtomicUsize,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n_workers", &self.config.n_workers)
            .field("scheduler", &self.config.scheduler)
            .field("noise", &self.config.noise)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with the given configuration, spawning the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let n_workers = config.n_workers.max(1);
        let scheduler = config.scheduler.build(n_workers);
        let mut workers = Vec::with_capacity(n_workers);
        for worker_idx in 0..n_workers {
            let sched = Arc::clone(&scheduler);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("apq-worker-{worker_idx}"))
                    .spawn(move || sched.run_worker(worker_idx))
                    .expect("failed to spawn worker thread"),
            );
        }
        let noise = config.noise.clone().map(|c| Arc::new(NoiseInjector::new(c)));
        Engine {
            config,
            scheduler,
            workers,
            noise,
            next_query_id: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Engine with `n` workers and default settings otherwise.
    pub fn with_workers(n: usize) -> Self {
        Engine::new(EngineConfig::with_workers(n))
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.config.n_workers
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot of the scheduler's per-worker counters (cumulative since the
    /// engine was created).
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler.stats()
    }

    /// Number of queries currently executing on this engine (all clients).
    pub fn in_flight_queries(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Registers a query with the scheduler, returning its handle. The handle
    /// can be passed to [`Engine::execute_with_handle`] and retained by the
    /// caller for mid-flight control (cancellation, DOP re-grants).
    pub fn register_query(&self, options: QueryOptions) -> Arc<QueryHandle> {
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        Arc::new(QueryHandle::new(id, options.priority, options.admitted_dop))
    }

    /// Executes a plan against a catalog, blocking until the result is ready.
    ///
    /// May be called concurrently from many client threads; all queries share
    /// the same worker pool.
    pub fn execute(&self, plan: &Plan, catalog: &Arc<Catalog>) -> Result<QueryExecution> {
        self.execute_shared(&Arc::new(plan.clone()), catalog)
    }

    /// Like [`Engine::execute`] but borrows an already-shared plan, avoiding
    /// the deep plan clone per run — the hot path for repeated executions of
    /// the same plan (benchmark loops, background workloads).
    pub fn execute_shared(
        &self,
        plan: &Arc<Plan>,
        catalog: &Arc<Catalog>,
    ) -> Result<QueryExecution> {
        let handle = self.register_query(QueryOptions::default());
        self.execute_with_handle(plan, catalog, handle)
    }

    /// Executes a plan under an explicit [`QueryHandle`] (from
    /// [`Engine::register_query`]), giving the caller per-query scheduling
    /// control: priority, admitted degree of parallelism, cancellation.
    pub fn execute_with_handle(
        &self,
        plan: &Arc<Plan>,
        catalog: &Arc<Catalog>,
        handle: Arc<QueryHandle>,
    ) -> Result<QueryExecution> {
        plan.validate()?;

        // Count of *other* queries in flight at submission, recorded in the
        // profile so consumers of the queue-wait signal can tell cross-query
        // interference from self-inflicted queueing (more partitions than
        // workers). The guard keeps the counter balanced on error returns.
        let concurrent_peers = self.in_flight.fetch_add(1, Ordering::AcqRel);
        struct InFlightGuard<'a>(&'a AtomicUsize);
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let _in_flight = InFlightGuard(&self.in_flight);

        let capacity = plan.capacity();
        let live = plan.node_ids();
        let mut deps: Vec<AtomicUsize> = Vec::with_capacity(capacity);
        for id in 0..capacity {
            let n = if plan.contains(id) { plan.node(id)?.inputs.len() } else { 0 };
            deps.push(AtomicUsize::new(n));
        }

        let state = Arc::new(RunState {
            plan: Arc::clone(plan),
            catalog: Arc::clone(catalog),
            handle,
            results: (0..capacity).map(|_| OnceLock::new()).collect(),
            profiles: (0..capacity).map(|_| OnceLock::new()).collect(),
            deps,
            remaining: AtomicUsize::new(live.len()),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            started: Instant::now(),
            noise: self.noise.clone(),
            overhead_us: self.config.per_operator_overhead_us,
        });

        // Seed the scheduler with every node that has no inputs. The check
        // must use the static plan structure (not the atomic dependency
        // counters): workers already run seeded nodes concurrently with this
        // loop and may drive another node's counter to zero before the loop
        // reaches it, which would double-schedule that node.
        for &id in &live {
            if plan.node(id)?.inputs.is_empty() {
                let st = Arc::clone(&state);
                let task = Task::new(Arc::clone(&state.handle), move |ctx| run_node(st, ctx, id));
                if !self.scheduler.submit(task) {
                    return Err(EngineError::EngineShutDown);
                }
            }
        }

        // Wait for completion (or failure).
        {
            let mut done = state.done.lock();
            while !*done {
                state.done_cv.wait(&mut done);
            }
        }
        if let Some(err) = state.error.lock().clone() {
            return Err(err);
        }

        let root = plan.root().expect("validated plan has a root");
        let root_chunk = state.results[root]
            .get()
            .cloned()
            .ok_or_else(|| EngineError::InvalidPlan("root node produced no result".to_string()))?;
        let operators: Vec<OperatorProfile> =
            state.profiles.iter().filter_map(OnceLock::get).cloned().collect();
        let profile = QueryProfile {
            wall_time: state.started.elapsed(),
            n_workers: self.config.n_workers,
            concurrent_peers,
            operators,
        };
        Ok(QueryExecution { output: root_chunk.to_output(), profile })
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Shutting the scheduler down lets the workers drain remaining tasks
        // and exit.
        self.scheduler.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

struct RunState {
    plan: Arc<Plan>,
    catalog: Arc<Catalog>,
    handle: Arc<QueryHandle>,
    /// One write-once slot per plan node: a producer publishes its chunk,
    /// consumers read it lock-free. Replaces the seed engine's whole-`Vec`
    /// mutex, which serialized input gathering under high DOP.
    results: Vec<OnceLock<Chunk>>,
    profiles: Vec<OnceLock<OperatorProfile>>,
    deps: Vec<AtomicUsize>,
    remaining: AtomicUsize,
    /// Fast-path flag mirroring `error.is_some()`.
    failed: AtomicBool,
    error: Mutex<Option<EngineError>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    started: Instant,
    noise: Option<Arc<NoiseInjector>>,
    overhead_us: u64,
}

impl RunState {
    fn finish(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.done_cv.notify_all();
    }

    fn fail(&self, err: EngineError) {
        {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.failed.store(true, Ordering::Release);
        self.finish();
    }
}

fn run_node(state: Arc<RunState>, ctx: &TaskContext<'_>, node: NodeId) {
    // A failed sibling already tore the query down; do nothing.
    if state.failed.load(Ordering::Acquire) {
        return;
    }
    if state.handle.is_cancelled() {
        return state.fail(EngineError::Cancelled);
    }
    let node_ref = match state.plan.node(node) {
        Ok(n) => n.clone(),
        Err(e) => return state.fail(e),
    };

    // Gather the (already materialized) inputs from their write-once slots.
    let mut inputs: Vec<Chunk> = Vec::with_capacity(node_ref.inputs.len());
    for &input in &node_ref.inputs {
        match state.results.get(input).and_then(OnceLock::get) {
            Some(chunk) => inputs.push(chunk.clone()),
            None => {
                return state.fail(EngineError::InvalidPlan(format!(
                    "node {node} was scheduled before its input {input} completed"
                )));
            }
        }
    }

    let queue_wait_us = ctx.queue_wait.as_micros() as u64;
    let start_us = state.started.elapsed().as_micros() as u64;
    // A panicking operator must fail *this query* (waking the submitting
    // client) rather than unwind through the shared worker pool.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_node(node, &node_ref.spec, &inputs, &state.catalog)
    }))
    .unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(EngineError::WorkerPanicked(format!("operator {node} panicked: {msg}")))
    });
    if state.overhead_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(state.overhead_us));
    }
    if let Some(noise) = &state.noise {
        noise.inject();
    }
    let end_us = state.started.elapsed().as_micros() as u64;

    let chunk = match outcome {
        Ok(chunk) => chunk,
        Err(e) => return state.fail(e),
    };

    let profile = OperatorProfile {
        node,
        name: node_ref.spec.name(),
        start_us,
        duration_us: end_us.saturating_sub(start_us),
        queue_wait_us,
        worker: ctx.worker,
        rows_out: chunk.rows(),
        bytes_out: chunk.byte_size(),
    };
    if state.profiles[node].set(profile).is_err() {
        return state.fail(EngineError::InvalidPlan(format!("node {node} executed twice")));
    }
    if state.results[node].set(chunk).is_err() {
        return state.fail(EngineError::InvalidPlan(format!("node {node} produced two results")));
    }

    // Wake up consumers whose dependencies are now all satisfied; follow-up
    // tasks go through the task context, so a work-stealing scheduler keeps
    // them on this worker's local deque (the producing core's cache is hot).
    for consumer in state.plan.consumers(node) {
        let edges = state
            .plan
            .node(consumer)
            .map(|c| c.inputs.iter().filter(|&&i| i == node).count())
            .unwrap_or(0);
        if edges == 0 {
            continue;
        }
        let before = state.deps[consumer].fetch_sub(edges, Ordering::AcqRel);
        if before == edges {
            let st = Arc::clone(&state);
            ctx.submit(Task::new(Arc::clone(&state.handle), move |ctx| {
                run_node(st, ctx, consumer)
            }));
        }
    }

    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        state.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::{ScalarValue, TableBuilder};
    use apq_operators::{AggFunc, CmpOp, Predicate};

    use crate::plan::OperatorSpec;

    fn catalog(rows: usize) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("t")
                .i64_column("a", (0..rows as i64).collect())
                .i64_column("b", (0..rows as i64).map(|v| v * 2).collect())
                .build()
                .unwrap(),
        );
        Arc::new(c)
    }

    fn scan(col: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: col.into(),
            range: RowRange::new(0, rows),
        }
    }

    /// Serial plan: sum(b) where a < threshold.
    fn filter_sum_plan(rows: usize, threshold: i64) -> Plan {
        let mut p = Plan::new();
        let a = p.add(scan("a", rows), vec![]);
        let sel = p
            .add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
        let b = p.add(scan("b", rows), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    fn both_policies() -> [Engine; 2] {
        [
            Engine::new(EngineConfig::with_workers(2)),
            Engine::new(
                EngineConfig::with_workers(2).with_scheduler(SchedulerPolicy::WorkStealing),
            ),
        ]
    }

    #[test]
    fn executes_serial_plan() {
        for engine in both_policies() {
            let cat = catalog(1000);
            let plan = filter_sum_plan(1000, 10);
            let exec = engine.execute(&plan, &cat).unwrap();
            // sum of b over a in [0,10) = 2 * (0+..+9) = 90.
            assert_eq!(exec.output, QueryOutput::Scalar(ScalarValue::I64(90)));
            assert_eq!(exec.profile.operators.len(), 6);
            assert!(exec.profile.wall_us() > 0);
            assert!(exec.profile.most_expensive().is_some());
            // Every task's dispatch is recorded by the scheduler.
            assert_eq!(engine.scheduler_stats().total_executed(), 6);
        }
    }

    #[test]
    fn parallel_partitioned_plan_gives_same_answer() {
        let engine = Engine::with_workers(4);
        let cat = catalog(10_000);
        let serial = filter_sum_plan(10_000, 500);
        let serial_out = engine.execute(&serial, &cat).unwrap().output;

        // Hand-built two-partition version of the same query.
        let mut p = Plan::new();
        let a0 = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(0, 5_000),
            },
            vec![],
        );
        let a1 = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(5_000, 10_000),
            },
            vec![],
        );
        let pred = Predicate::cmp(CmpOp::Lt, 500i64);
        let s0 = p.add(OperatorSpec::Select { predicate: pred.clone() }, vec![a0]);
        let s1 = p.add(OperatorSpec::Select { predicate: pred }, vec![a1]);
        let b = p.add(scan("b", 10_000), vec![]);
        let f0 = p.add(OperatorSpec::Fetch, vec![s0, b]);
        let f1 = p.add(OperatorSpec::Fetch, vec![s1, b]);
        let g0 = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![f0]);
        let g1 = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![f1]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![g0, g1]);
        p.set_root(fin);

        let exec = engine.execute(&p, &cat).unwrap();
        assert_eq!(exec.output, serial_out);
        // Both partitions' operators were profiled.
        assert_eq!(exec.profile.operators.len(), 10);
    }

    #[test]
    fn concurrent_queries_share_the_pool() {
        for policy in SchedulerPolicy::ALL {
            let engine =
                Arc::new(Engine::new(EngineConfig::with_workers(3).with_scheduler(policy)));
            let cat = catalog(5_000);
            let mut handles = Vec::new();
            for i in 0..8 {
                let engine = Arc::clone(&engine);
                let cat = Arc::clone(&cat);
                handles.push(std::thread::spawn(move || {
                    let plan = filter_sum_plan(5_000, 100 + i);
                    engine.execute(&plan, &cat).unwrap().output
                }));
            }
            for (i, h) in handles.into_iter().enumerate() {
                let out = h.join().unwrap();
                let threshold = 100 + i as i64;
                let expected: i64 = (0..threshold).map(|v| v * 2).sum();
                assert_eq!(out, QueryOutput::Scalar(ScalarValue::I64(expected)));
            }
        }
    }

    #[test]
    fn execution_errors_are_propagated() {
        for engine in both_policies() {
            let cat = catalog(10);
            // Division by zero in a calc node.
            let mut p = Plan::new();
            let a = p.add(scan("a", 10), vec![]);
            let div = p.add(
                OperatorSpec::Calc {
                    op: apq_operators::BinaryOp::Div,
                    left_scalar: None,
                    right_scalar: Some(ScalarValue::I64(0)),
                },
                vec![a],
            );
            p.set_root(div);
            let err = engine.execute(&p, &cat).unwrap_err();
            assert!(matches!(err, EngineError::Operator(_)));

            // Unknown table surfaces as a storage error.
            let mut p = Plan::new();
            let bad = p.add(
                OperatorSpec::ScanColumn {
                    table: "missing".into(),
                    column: "x".into(),
                    range: RowRange::new(0, 1),
                },
                vec![],
            );
            p.set_root(bad);
            assert!(engine.execute(&p, &cat).is_err());

            // Invalid plans are rejected before execution.
            let p = Plan::new();
            assert!(matches!(engine.execute(&p, &cat), Err(EngineError::InvalidPlan(_))));
        }
    }

    #[test]
    fn noise_and_overhead_inflate_operator_times() {
        let cat = catalog(100);
        let plan = filter_sum_plan(100, 50);
        let quiet = Engine::new(EngineConfig::with_workers(2));
        let slow = Engine::new(EngineConfig {
            per_operator_overhead_us: 500,
            ..EngineConfig::with_workers(2)
        });
        let q = quiet.execute(&plan, &cat).unwrap();
        let s = slow.execute(&plan, &cat).unwrap();
        assert_eq!(q.output, s.output);
        assert!(s.profile.total_cpu_us() > q.profile.total_cpu_us() + 1_000);

        let noisy = Engine::new(EngineConfig {
            noise: Some(NoiseConfig { probability: 1.0, max_delay_us: 300, seed: 7 }),
            ..EngineConfig::with_workers(2)
        });
        let n = noisy.execute(&plan, &cat).unwrap();
        assert_eq!(n.output, q.output);
    }

    #[test]
    fn engine_debug_and_config() {
        let engine = Engine::with_workers(2);
        assert_eq!(engine.n_workers(), 2);
        assert!(format!("{engine:?}").contains("n_workers"));
        assert_eq!(engine.config().per_operator_overhead_us, 0);
        assert_eq!(engine.config().scheduler, SchedulerPolicy::GlobalQueue);
        let default_cfg = EngineConfig::default();
        assert!(default_cfg.n_workers >= 1);
        assert_eq!(default_cfg.scheduler, SchedulerPolicy::GlobalQueue);
    }

    #[test]
    fn queue_wait_is_profiled() {
        // One worker, a plan with independent scans: whichever scan runs
        // second must have waited in the queue while the first executed.
        let engine = Engine::with_workers(1);
        let cat = catalog(50_000);
        let plan = filter_sum_plan(50_000, 1_000);
        let exec = engine.execute(&plan, &cat).unwrap();
        let total_wait: u64 = exec.profile.operators.iter().map(|o| o.queue_wait_us).sum();
        assert!(
            total_wait > 0,
            "no queue wait recorded on a single-worker engine: {:?}",
            exec.profile.operators
        );
        assert_eq!(exec.profile.total_queue_wait_us(), total_wait);
    }

    #[test]
    fn cancellation_aborts_the_query() {
        for engine in both_policies() {
            let cat = catalog(1_000);
            let plan = Arc::new(filter_sum_plan(1_000, 10));
            let handle = engine.register_query(QueryOptions::default());
            handle.cancel();
            let err = engine.execute_with_handle(&plan, &cat, handle).unwrap_err();
            assert_eq!(err, EngineError::Cancelled);
        }
    }

    #[test]
    fn admitted_dop_throttles_but_preserves_results() {
        for policy in SchedulerPolicy::ALL {
            let engine = Engine::new(EngineConfig::with_workers(4).with_scheduler(policy));
            let cat = catalog(10_000);
            let plan = Arc::new(filter_sum_plan(10_000, 500));
            let expected = engine.execute_shared(&plan, &cat).unwrap().output;
            let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
            let exec = engine.execute_with_handle(&plan, &cat, handle).unwrap();
            assert_eq!(exec.output, expected, "{policy}: throttled run diverged");
        }
    }

    #[test]
    fn shared_plan_execution_avoids_replanning() {
        let engine = Engine::with_workers(2);
        let cat = catalog(2_000);
        let plan = Arc::new(filter_sum_plan(2_000, 20));
        let first = engine.execute_shared(&plan, &cat).unwrap().output;
        for _ in 0..3 {
            assert_eq!(engine.execute_shared(&plan, &cat).unwrap().output, first);
        }
    }

    #[test]
    fn work_stealing_records_locality() {
        let engine = Engine::new(
            EngineConfig::with_workers(2).with_scheduler(SchedulerPolicy::WorkStealing),
        );
        let cat = catalog(20_000);
        // A serial chain: every follow-up is produced on a worker, so local
        // hits must appear.
        let plan = filter_sum_plan(20_000, 500);
        engine.execute(&plan, &cat).unwrap();
        let stats = engine.scheduler_stats();
        assert_eq!(stats.policy, "work-stealing");
        assert_eq!(stats.total_executed(), 6);
        assert!(
            stats.total_local_hits() > 0,
            "chained operators never hit the local deque: {stats:?}"
        );
    }
}
