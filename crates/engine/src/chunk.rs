//! Intermediate results flowing along plan edges.
//!
//! # The `stream_base` candidate-stream alignment invariant
//!
//! A *candidate stream* is an intermediate ordered by an oid list rather
//! than by base-table position (a fetch output, a join result, a projected
//! join side). Plan mutations cut such streams positionally
//! ([`crate::plan::OperatorSpec::SlicePart`]), and the morsel-driven
//! execution mode ([`crate::pipeline`]) cuts them again into morsels. Note
//! that the morsel size is **not a per-engine constant**: the elastic
//! resource controller ([`crate::controller`]) may re-size it per pipeline
//! *launch* (never within a launched pipeline), so nothing below this layer
//! may assume two pipelines of one query used the same cut width — only the
//! `stream_base` labels make slices position-safe, not any fixed stride.
//! The invariant, introduced by the PR-1 correctness fix:
//!
//! > Every positional partition of a stream remembers its offset within the
//! > stream (`stream_base`), and every positionally-aligned output carries
//! > that offset forward.
//!
//! [`Chunk::Oids`] and [`Chunk::Join`] carry the offset; slicing adds its
//! start to it; fetch writes it into the output column's base oid
//! ([`apq_columnar::Column::base_oid`]); position-emitting consumers
//! (probes, selections) then emit *absolute* stream positions. Violating
//! the invariant does not crash — it silently pairs rows across the wrong
//! partitions (historically: group sums redistributed across groups; see
//! `crates/engine/tests/stream_alignment.rs` for the deterministic
//! regression and `docs/architecture.md` §6 for the full story).
//!
//! **New position-emitting operators must follow the same three rules:**
//! read the input's `stream_base`, emit `base + local index`, and label any
//! sliced output via [`Chunk::oids_at`] / [`Chunk::join_at`]. The exchange
//! union `debug_assert`s that packed parts are in consistent stream order.

use std::sync::Arc;

use apq_columnar::{Column, Oid, ScalarValue};
use apq_operators::{AggState, GroupKey, GroupedAgg, JoinHashTable, JoinResult};

/// One materialized intermediate result (the output of a plan node).
///
/// Everything large is behind an `Arc` so that fan-out edges (one producer,
/// many consumers) never copy data.
#[derive(Debug, Clone)]
pub enum Chunk {
    /// A value column (base slice or computed intermediate).
    Column(Column),
    /// A candidate list of absolute oids.
    ///
    /// `stream_base` is the list's own offset within the candidate *stream*
    /// it was cut from: `0` for a freshly produced list, `k` for a
    /// `SlicePart { start: k, .. }` partition of one. Operators whose outputs
    /// are positionally aligned with the candidate stream (fetch) propagate
    /// it into their output column's base oid, so that plan mutations may
    /// clone position-emitting consumers (joins, selects) over partitions of
    /// a stream without the partitions forgetting where in the stream they
    /// came from (paper §2.3 alignment).
    Oids {
        /// The absolute oids.
        oids: Arc<Vec<Oid>>,
        /// Offset of this list within its candidate stream.
        stream_base: Oid,
    },
    /// Matching `(outer, inner)` oid pairs of a join.
    ///
    /// `stream_base` tracks the pair list's offset within the join-result
    /// stream it was cut from, exactly like [`Chunk::Oids::stream_base`].
    Join {
        /// The matching pairs.
        result: Arc<JoinResult>,
        /// Offset of this pair list within its join-result stream.
        stream_base: Oid,
    },
    /// A shared join hash table (build side).
    Hash(Arc<JoinHashTable>),
    /// A mergeable partial scalar aggregate.
    AggPartial(AggState),
    /// A mergeable grouped aggregate.
    Grouped(Arc<GroupedAgg>),
    /// A final scalar value.
    Scalar(ScalarValue),
}

impl Chunk {
    /// A fresh candidate list (stream offset 0).
    pub fn oids(oids: Vec<Oid>) -> Self {
        Chunk::Oids { oids: Arc::new(oids), stream_base: 0 }
    }

    /// A candidate list cut from a stream at `stream_base`.
    pub fn oids_at(oids: Vec<Oid>, stream_base: Oid) -> Self {
        Chunk::Oids { oids: Arc::new(oids), stream_base }
    }

    /// A fresh join result (stream offset 0).
    pub fn join(result: JoinResult) -> Self {
        Chunk::Join { result: Arc::new(result), stream_base: 0 }
    }

    /// A join-result window cut from a stream at `stream_base`.
    pub fn join_at(result: JoinResult, stream_base: Oid) -> Self {
        Chunk::Join { result: Arc::new(result), stream_base }
    }

    /// Short kind name (used in error messages and plan dumps).
    pub fn kind(&self) -> &'static str {
        match self {
            Chunk::Column(_) => "column",
            Chunk::Oids { .. } => "oids",
            Chunk::Join { .. } => "join",
            Chunk::Hash(_) => "hash",
            Chunk::AggPartial(_) => "agg-partial",
            Chunk::Grouped(_) => "grouped",
            Chunk::Scalar(_) => "scalar",
        }
    }

    /// Number of rows represented by this chunk.
    pub fn rows(&self) -> usize {
        match self {
            Chunk::Column(c) => c.len(),
            Chunk::Oids { oids, .. } => oids.len(),
            Chunk::Join { result, .. } => result.len(),
            Chunk::Hash(h) => h.len(),
            Chunk::AggPartial(_) | Chunk::Scalar(_) => 1,
            Chunk::Grouped(g) => g.len(),
        }
    }

    /// Approximate size in bytes (profiler memory claims).
    pub fn byte_size(&self) -> usize {
        match self {
            Chunk::Column(c) => c.byte_size(),
            Chunk::Oids { oids, .. } => oids.len() * 8,
            Chunk::Join { result, .. } => result.len() * 16,
            Chunk::Hash(h) => h.byte_size(),
            Chunk::AggPartial(_) => std::mem::size_of::<AggState>(),
            Chunk::Scalar(_) => std::mem::size_of::<ScalarValue>(),
            Chunk::Grouped(g) => g.byte_size(),
        }
    }

    /// Converts the chunk into the comparable [`QueryOutput`] representation.
    pub fn to_output(&self) -> QueryOutput {
        match self {
            Chunk::Scalar(v) => QueryOutput::Scalar(v.clone()),
            Chunk::Grouped(g) => QueryOutput::Groups(g.finish_sorted()),
            Chunk::AggPartial(s) => QueryOutput::Scalar(s.finish()),
            Chunk::Oids { oids, .. } => QueryOutput::Oids(oids.as_ref().clone()),
            Chunk::Column(c) => QueryOutput::Column(c.to_scalars()),
            Chunk::Join { result, .. } => QueryOutput::JoinPairs(
                result.outer_oids.iter().copied().zip(result.inner_oids.iter().copied()).collect(),
            ),
            Chunk::Hash(h) => QueryOutput::Opaque(format!("hash-table({} entries)", h.len())),
        }
    }
}

/// Canonical, comparable representation of a query result.
///
/// Adaptive, heuristic and serial plans for the same query must produce equal
/// `QueryOutput`s — the integration tests and the optimizer's sanity checks
/// rely on this.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// A single scalar (e.g. TPC-H Q6 revenue, Q14 promo share).
    Scalar(ScalarValue),
    /// Sorted `(group, value)` pairs of a grouped aggregate.
    Groups(Vec<(GroupKey, ScalarValue)>),
    /// A candidate list.
    Oids(Vec<Oid>),
    /// A materialized column.
    Column(Vec<ScalarValue>),
    /// Join pairs.
    JoinPairs(Vec<(Oid, Oid)>),
    /// Something that has no natural value representation.
    Opaque(String),
}

impl QueryOutput {
    /// Number of result rows.
    pub fn rows(&self) -> usize {
        match self {
            QueryOutput::Scalar(_) => 1,
            QueryOutput::Groups(g) => g.len(),
            QueryOutput::Oids(o) => o.len(),
            QueryOutput::Column(c) => c.len(),
            QueryOutput::JoinPairs(p) => p.len(),
            QueryOutput::Opaque(_) => 0,
        }
    }

    /// Compact single-line rendering for experiment logs.
    pub fn summary(&self) -> String {
        match self {
            QueryOutput::Scalar(v) => format!("scalar {v}"),
            QueryOutput::Groups(g) => {
                let head: Vec<String> = g.iter().take(3).map(|(k, v)| format!("{k}={v}")).collect();
                format!(
                    "{} groups [{}{}]",
                    g.len(),
                    head.join(", "),
                    if g.len() > 3 { ", ..." } else { "" }
                )
            }
            QueryOutput::Oids(o) => format!("{} oids", o.len()),
            QueryOutput::Column(c) => format!("{} rows", c.len()),
            QueryOutput::JoinPairs(p) => format!("{} join pairs", p.len()),
            QueryOutput::Opaque(s) => s.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_operators::AggFunc;

    #[test]
    fn kinds_rows_and_sizes() {
        let col = Chunk::Column(Column::from_i64(vec![1, 2, 3]));
        assert_eq!(col.kind(), "column");
        assert_eq!(col.rows(), 3);
        assert_eq!(col.byte_size(), 24);

        let oids = Chunk::oids(vec![1, 2]);
        assert_eq!(oids.kind(), "oids");
        assert_eq!(oids.rows(), 2);
        assert_eq!(oids.byte_size(), 16);

        let scalar = Chunk::Scalar(ScalarValue::I64(7));
        assert_eq!(scalar.rows(), 1);
        assert_eq!(scalar.kind(), "scalar");

        let agg = Chunk::AggPartial(AggState::new(AggFunc::Sum));
        assert_eq!(agg.rows(), 1);
        assert!(agg.byte_size() > 0);
    }

    #[test]
    fn outputs_compare() {
        let a = Chunk::Column(Column::from_i64(vec![1, 2])).to_output();
        let b = Chunk::Column(Column::from_i64(vec![1, 2])).to_output();
        let c = Chunk::Column(Column::from_i64(vec![2, 1])).to_output();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.rows(), 2);

        let s = Chunk::Scalar(ScalarValue::I64(3)).to_output();
        assert_eq!(s, QueryOutput::Scalar(ScalarValue::I64(3)));
        assert_eq!(s.rows(), 1);
        assert!(s.summary().contains('3'));
    }

    #[test]
    fn join_and_hash_outputs() {
        let inner = Column::from_i64(vec![1, 2]);
        let ht = JoinHashTable::build(&inner).unwrap();
        let out = Chunk::Hash(Arc::new(ht)).to_output();
        assert!(matches!(out, QueryOutput::Opaque(_)));
        assert_eq!(out.rows(), 0);

        let jr = JoinResult { outer_oids: vec![0, 1], inner_oids: vec![5, 6] };
        let out = Chunk::join(jr).to_output();
        assert_eq!(out, QueryOutput::JoinPairs(vec![(0, 5), (1, 6)]));
        assert!(out.summary().contains("2 join pairs"));
    }

    #[test]
    fn groups_summary() {
        let keys = Column::from_i64(vec![1, 1, 2, 3, 4]);
        let vals = Column::from_i64(vec![1, 1, 1, 1, 1]);
        let g = apq_operators::grouped_agg(AggFunc::Count, &keys, &vals).unwrap();
        let out = Chunk::Grouped(Arc::new(g)).to_output();
        assert_eq!(out.rows(), 4);
        assert!(out.summary().contains("4 groups"));
        assert!(out.summary().contains("..."));
    }
}
