//! Intermediate results flowing along plan edges.
//!
//! # Candidate streams are zero-copy windowed views
//!
//! A *candidate stream* is an intermediate ordered by an oid list rather
//! than by base-table position (a fetch output, a join result, a projected
//! join side). Plan mutations cut such streams positionally
//! ([`crate::plan::OperatorSpec::SlicePart`]), and the morsel-driven
//! execution mode ([`crate::pipeline`]) cuts them again into morsels. Note
//! that the morsel size is **not a per-engine constant**: the elastic
//! resource controller ([`crate::controller`]) may re-size it per pipeline
//! *launch* (never within a launched pipeline), so nothing below this layer
//! may assume two pipelines of one query used the same cut width — only the
//! stream-offset labels make slices position-safe, not any fixed stride.
//!
//! [`Chunk::Oids`] and [`Chunk::Join`] mirror what [`Column`] already is: an
//! `Arc`-shared backing plus an `(offset, len)` window ([`OidsView`] /
//! [`JoinView`]). Cutting a stream is therefore pure window arithmetic —
//! "creating slices involves marking the boundary ranges … there is no data
//! copying involved" (paper §2.3) now holds for candidate streams exactly as
//! it does for base columns, and [`OidsView::slice`] performs **zero heap
//! allocations** (pinned by `crates/engine/tests/zero_alloc_views.rs`).
//!
//! # The `stream_base` alignment invariant
//!
//! The invariant, introduced by the PR-1 correctness fix:
//!
//! > Every positional partition of a stream remembers its offset within the
//! > stream (`stream_base`), and every positionally-aligned output carries
//! > that offset forward.
//!
//! With windowed views the offset is no longer threaded by hand through
//! every cut: a view cut from a stream *derives* its `stream_base` from the
//! window position ([`OidsView::slice`] advances base and window offset in
//! lockstep), so the invariant holds by construction along slice chains.
//! The explicit label still exists — and matters — for views over *fresh*
//! backing at a non-zero stream position ([`Chunk::oids_at`] /
//! [`Chunk::join_at`]: a projected join side, a packed union of
//! heterogeneous parts), where the backing offset is 0 but the stream
//! offset is not.
//!
//! Fetch writes the offset into the output column's base oid
//! ([`apq_columnar::Column::base_oid`]); position-emitting consumers
//! (probes, selections) then emit *absolute* stream positions. Violating
//! the invariant does not crash — it silently pairs rows across the wrong
//! partitions (historically: group sums redistributed across groups; see
//! `crates/engine/tests/stream_alignment.rs` for the deterministic
//! regression and `docs/architecture.md` §6 for the full story).
//!
//! **New position-emitting operators must follow the same three rules:**
//! read the input's [`OidsView::stream_base`], emit `base + local index`,
//! and label any freshly-backed output via [`Chunk::oids_at`] /
//! [`Chunk::join_at`]. The exchange union `debug_assert`s that packed parts
//! are in consistent stream order.

use std::sync::Arc;

use apq_columnar::{Column, Oid, ScalarValue};
use apq_operators::{AggState, GroupKey, GroupedAgg, JoinHashTable, JoinResult};

/// A zero-copy window over an `Arc`-shared candidate (oid) list — the
/// stream analogue of [`Column`]'s `(storage, offset, len)` view.
///
/// `stream_base` is the window's offset within the candidate *stream* it
/// belongs to: equal to the backing offset for windows cut from a fresh
/// stream, but independent of it for views over fresh backing at a non-zero
/// stream position (a projected join side, a packed union of stream parts).
/// [`OidsView::slice`] advances both in lockstep, so stream offsets are
/// *derived* along slice chains rather than threaded by hand.
#[derive(Debug, Clone)]
pub struct OidsView {
    data: Arc<Vec<Oid>>,
    offset: usize,
    len: usize,
    stream_base: Oid,
}

impl OidsView {
    /// A fresh candidate list (stream offset 0), viewing all of it.
    pub fn new(oids: Vec<Oid>) -> Self {
        OidsView::at(oids, 0)
    }

    /// A full view of fresh backing sitting at `stream_base` within its
    /// stream (e.g. a projected join side of a stream partition).
    pub fn at(oids: Vec<Oid>, stream_base: Oid) -> Self {
        let len = oids.len();
        OidsView { data: Arc::new(oids), offset: 0, len, stream_base }
    }

    /// The visible oids.
    pub fn as_slice(&self) -> &[Oid] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Number of visible oids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window covers no oids.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Offset of the window within the backing list.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Offset of the window within its candidate stream.
    pub fn stream_base(&self) -> Oid {
        self.stream_base
    }

    /// Total length of the shared backing list (the window covers
    /// `[offset, offset + len)` of it). [`Chunk::byte_size`] reports window
    /// bytes; this is the honest denominator for shared-backing claims.
    pub fn backing_len(&self) -> usize {
        self.data.len()
    }

    /// Cuts a sub-window: pure window arithmetic, no allocation. `start` and
    /// `len` are clamped to the visible window (the boundary adjustment of
    /// paper Fig. 9 for dynamically sized partitions). The sub-window's
    /// `stream_base` advances by the (clamped) start, preserving the
    /// alignment invariant by construction.
    pub fn slice(&self, start: usize, len: usize) -> OidsView {
        let end = start.saturating_add(len).min(self.len);
        let start = start.min(end);
        OidsView {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
            stream_base: self.stream_base + start as Oid,
        }
    }

    /// True when both views window the same backing allocation.
    pub fn shares_backing_with(&self, other: &OidsView) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// True when `next` is the window immediately following `self` in the
    /// same backing *and* the same stream — the reassembly fast-path test:
    /// packing `self ++ next` equals widening `self` over both windows.
    pub fn is_contiguous_with(&self, next: &OidsView) -> bool {
        self.shares_backing_with(next)
            && next.offset == self.offset + self.len
            && next.stream_base == self.stream_base + self.len as Oid
    }

    /// The parent window covering `len` elements from this view's start —
    /// the zero-copy reassembly of consecutive windows. `len` must fit the
    /// backing.
    pub fn widened(&self, len: usize) -> OidsView {
        debug_assert!(self.offset + len <= self.data.len(), "widened window exceeds backing");
        OidsView {
            data: Arc::clone(&self.data),
            offset: self.offset,
            len,
            stream_base: self.stream_base,
        }
    }
}

/// A zero-copy window over an `Arc`-shared join result, exactly like
/// [`OidsView`] but windowing the parallel `(outer, inner)` oid vectors of a
/// [`JoinResult`].
#[derive(Debug, Clone)]
pub struct JoinView {
    result: Arc<JoinResult>,
    offset: usize,
    len: usize,
    stream_base: Oid,
}

impl JoinView {
    /// A fresh join result (stream offset 0), viewing all of it.
    pub fn new(result: JoinResult) -> Self {
        JoinView::at(result, 0)
    }

    /// A full view of a fresh join result sitting at `stream_base` within
    /// its join-result stream.
    pub fn at(result: JoinResult, stream_base: Oid) -> Self {
        let len = result.len();
        JoinView { result: Arc::new(result), offset: 0, len, stream_base }
    }

    /// The visible outer-side oids.
    pub fn outer(&self) -> &[Oid] {
        &self.result.outer_oids[self.offset..self.offset + self.len]
    }

    /// The visible inner-side oids.
    pub fn inner(&self) -> &[Oid] {
        &self.result.inner_oids[self.offset..self.offset + self.len]
    }

    /// Number of visible pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window covers no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Offset of the window within the backing join result.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Offset of the window within its join-result stream.
    pub fn stream_base(&self) -> Oid {
        self.stream_base
    }

    /// Total pair count of the shared backing join result.
    pub fn backing_len(&self) -> usize {
        self.result.len()
    }

    /// Cuts a sub-window: window arithmetic only, no allocation, clamped
    /// like [`OidsView::slice`].
    pub fn slice(&self, start: usize, len: usize) -> JoinView {
        let end = start.saturating_add(len).min(self.len);
        let start = start.min(end);
        JoinView {
            result: Arc::clone(&self.result),
            offset: self.offset + start,
            len: end - start,
            stream_base: self.stream_base + start as Oid,
        }
    }

    /// True when both views window the same backing allocation.
    pub fn shares_backing_with(&self, other: &JoinView) -> bool {
        Arc::ptr_eq(&self.result, &other.result)
    }

    /// True when `next` immediately follows `self` in the same backing and
    /// the same stream (see [`OidsView::is_contiguous_with`]).
    pub fn is_contiguous_with(&self, next: &JoinView) -> bool {
        self.shares_backing_with(next)
            && next.offset == self.offset + self.len
            && next.stream_base == self.stream_base + self.len as Oid
    }

    /// The parent window covering `len` pairs from this view's start.
    pub fn widened(&self, len: usize) -> JoinView {
        debug_assert!(self.offset + len <= self.result.len(), "widened window exceeds backing");
        JoinView {
            result: Arc::clone(&self.result),
            offset: self.offset,
            len,
            stream_base: self.stream_base,
        }
    }
}

/// One materialized intermediate result (the output of a plan node).
///
/// Everything large is behind an `Arc` so that fan-out edges (one producer,
/// many consumers) never copy data, and the stream variants are windowed
/// views so that positional cuts never copy either.
#[derive(Debug, Clone)]
pub enum Chunk {
    /// A value column (base slice or computed intermediate).
    Column(Column),
    /// A windowed view of a candidate list of absolute oids.
    ///
    /// The view's `stream_base` is its offset within the candidate *stream*
    /// it belongs to: `0` for a freshly produced list, `k` for a
    /// `SlicePart { start: k, .. }` window of one. Operators whose outputs
    /// are positionally aligned with the candidate stream (fetch) propagate
    /// it into their output column's base oid, so that plan mutations may
    /// clone position-emitting consumers (joins, selects) over partitions of
    /// a stream without the partitions forgetting where in the stream they
    /// came from (paper §2.3 alignment).
    Oids(OidsView),
    /// A windowed view of matching `(outer, inner)` oid pairs of a join,
    /// with the same stream-offset semantics as [`Chunk::Oids`].
    Join(JoinView),
    /// A shared join hash table (build side).
    Hash(Arc<JoinHashTable>),
    /// A mergeable partial scalar aggregate.
    AggPartial(AggState),
    /// A mergeable grouped aggregate.
    Grouped(Arc<GroupedAgg>),
    /// A final scalar value.
    Scalar(ScalarValue),
}

impl Chunk {
    /// A fresh candidate list (stream offset 0).
    pub fn oids(oids: Vec<Oid>) -> Self {
        Chunk::Oids(OidsView::new(oids))
    }

    /// A candidate list cut from a stream at `stream_base`.
    pub fn oids_at(oids: Vec<Oid>, stream_base: Oid) -> Self {
        Chunk::Oids(OidsView::at(oids, stream_base))
    }

    /// A fresh join result (stream offset 0).
    pub fn join(result: JoinResult) -> Self {
        Chunk::Join(JoinView::new(result))
    }

    /// A join-result window cut from a stream at `stream_base`.
    pub fn join_at(result: JoinResult, stream_base: Oid) -> Self {
        Chunk::Join(JoinView::at(result, stream_base))
    }

    /// The oid view, when this chunk is a candidate list.
    pub fn as_oids_view(&self) -> Option<&OidsView> {
        match self {
            Chunk::Oids(v) => Some(v),
            _ => None,
        }
    }

    /// The join view, when this chunk is a join result.
    pub fn as_join_view(&self) -> Option<&JoinView> {
        match self {
            Chunk::Join(v) => Some(v),
            _ => None,
        }
    }

    /// Short kind name (used in error messages and plan dumps).
    pub fn kind(&self) -> &'static str {
        match self {
            Chunk::Column(_) => "column",
            Chunk::Oids(_) => "oids",
            Chunk::Join(_) => "join",
            Chunk::Hash(_) => "hash",
            Chunk::AggPartial(_) => "agg-partial",
            Chunk::Grouped(_) => "grouped",
            Chunk::Scalar(_) => "scalar",
        }
    }

    /// Number of rows represented by this chunk (the visible window for
    /// stream views).
    pub fn rows(&self) -> usize {
        match self {
            Chunk::Column(c) => c.len(),
            Chunk::Oids(v) => v.len(),
            Chunk::Join(v) => v.len(),
            Chunk::Hash(h) => h.len(),
            Chunk::AggPartial(_) | Chunk::Scalar(_) => 1,
            Chunk::Grouped(g) => g.len(),
        }
    }

    /// Approximate size in bytes (profiler memory claims).
    ///
    /// Windowed variants (columns, oid lists, join results) report the
    /// *window* bytes, not the shared backing allocation — N views over one
    /// backing must not claim N× its memory. See [`OidsView::backing_len`] /
    /// [`JoinView::backing_len`] for the backing size. Columns follow the
    /// same rule for their lazily-typed caches: [`Column::byte_size`]
    /// attributes the warm cache to exactly one view per backing (the
    /// full-backing view), so a morsel decomposition plus its parent sums
    /// to one cache, not one per window.
    pub fn byte_size(&self) -> usize {
        match self {
            Chunk::Column(c) => c.byte_size(),
            Chunk::Oids(v) => v.len() * std::mem::size_of::<Oid>(),
            Chunk::Join(v) => v.len() * 2 * std::mem::size_of::<Oid>(),
            Chunk::Hash(h) => h.byte_size(),
            Chunk::AggPartial(_) => std::mem::size_of::<AggState>(),
            Chunk::Scalar(_) => std::mem::size_of::<ScalarValue>(),
            Chunk::Grouped(g) => g.byte_size(),
        }
    }

    /// Converts the chunk into the comparable [`QueryOutput`] representation.
    pub fn to_output(&self) -> QueryOutput {
        match self {
            Chunk::Scalar(v) => QueryOutput::Scalar(v.clone()),
            Chunk::Grouped(g) => QueryOutput::Groups(g.finish_sorted()),
            Chunk::AggPartial(s) => QueryOutput::Scalar(s.finish()),
            Chunk::Oids(v) => QueryOutput::Oids(v.as_slice().to_vec()),
            Chunk::Column(c) => QueryOutput::Column(c.to_scalars()),
            Chunk::Join(v) => QueryOutput::JoinPairs(
                v.outer().iter().copied().zip(v.inner().iter().copied()).collect(),
            ),
            Chunk::Hash(h) => QueryOutput::Opaque(format!("hash-table({} entries)", h.len())),
        }
    }
}

/// Canonical, comparable representation of a query result.
///
/// Adaptive, heuristic and serial plans for the same query must produce equal
/// `QueryOutput`s — the integration tests and the optimizer's sanity checks
/// rely on this.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// A single scalar (e.g. TPC-H Q6 revenue, Q14 promo share).
    Scalar(ScalarValue),
    /// Sorted `(group, value)` pairs of a grouped aggregate.
    Groups(Vec<(GroupKey, ScalarValue)>),
    /// A candidate list.
    Oids(Vec<Oid>),
    /// A materialized column.
    Column(Vec<ScalarValue>),
    /// Join pairs.
    JoinPairs(Vec<(Oid, Oid)>),
    /// Something that has no natural value representation.
    Opaque(String),
}

impl QueryOutput {
    /// Number of result rows.
    pub fn rows(&self) -> usize {
        match self {
            QueryOutput::Scalar(_) => 1,
            QueryOutput::Groups(g) => g.len(),
            QueryOutput::Oids(o) => o.len(),
            QueryOutput::Column(c) => c.len(),
            QueryOutput::JoinPairs(p) => p.len(),
            QueryOutput::Opaque(_) => 0,
        }
    }

    /// Compact single-line rendering for experiment logs.
    pub fn summary(&self) -> String {
        match self {
            QueryOutput::Scalar(v) => format!("scalar {v}"),
            QueryOutput::Groups(g) => {
                let head: Vec<String> = g.iter().take(3).map(|(k, v)| format!("{k}={v}")).collect();
                format!(
                    "{} groups [{}{}]",
                    g.len(),
                    head.join(", "),
                    if g.len() > 3 { ", ..." } else { "" }
                )
            }
            QueryOutput::Oids(o) => format!("{} oids", o.len()),
            QueryOutput::Column(c) => format!("{} rows", c.len()),
            QueryOutput::JoinPairs(p) => format!("{} join pairs", p.len()),
            QueryOutput::Opaque(s) => s.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_operators::AggFunc;

    #[test]
    fn kinds_rows_and_sizes() {
        let col = Chunk::Column(Column::from_i64(vec![1, 2, 3]));
        assert_eq!(col.kind(), "column");
        assert_eq!(col.rows(), 3);
        assert_eq!(col.byte_size(), 24);

        let oids = Chunk::oids(vec![1, 2]);
        assert_eq!(oids.kind(), "oids");
        assert_eq!(oids.rows(), 2);
        assert_eq!(oids.byte_size(), 16);

        let scalar = Chunk::Scalar(ScalarValue::I64(7));
        assert_eq!(scalar.rows(), 1);
        assert_eq!(scalar.kind(), "scalar");

        let agg = Chunk::AggPartial(AggState::new(AggFunc::Sum));
        assert_eq!(agg.rows(), 1);
        assert!(agg.byte_size() > 0);
    }

    #[test]
    fn oids_view_windows_share_backing() {
        let parent = OidsView::new((0..100).collect());
        assert_eq!(parent.len(), 100);
        assert_eq!(parent.backing_len(), 100);
        assert_eq!(parent.stream_base(), 0);

        let a = parent.slice(10, 30);
        assert_eq!(a.as_slice(), (10..40).collect::<Vec<Oid>>());
        assert_eq!(a.offset(), 10);
        assert_eq!(a.stream_base(), 10);
        assert_eq!(a.backing_len(), 100);
        assert!(a.shares_backing_with(&parent));

        // Nested slice: offsets and bases accumulate.
        let b = a.slice(5, 10);
        assert_eq!(b.as_slice(), (15..25).collect::<Vec<Oid>>());
        assert_eq!(b.stream_base(), 15);
        assert!(b.shares_backing_with(&parent));

        // Clamping: overshoot is trimmed, far starts become empty windows.
        let tail = parent.slice(90, 50);
        assert_eq!(tail.len(), 10);
        let empty = parent.slice(200, 10);
        assert!(empty.is_empty());
        assert_eq!(empty.stream_base(), 100);
    }

    #[test]
    fn oids_view_contiguity_and_widening() {
        let parent = OidsView::new((0..100).collect());
        let a = parent.slice(0, 40);
        let b = parent.slice(40, 35);
        let c = parent.slice(75, 25);
        assert!(a.is_contiguous_with(&b));
        assert!(b.is_contiguous_with(&c));
        assert!(!a.is_contiguous_with(&c));
        // A fresh list with identical values is a different backing.
        let alien = OidsView::at((40..75).collect(), 40);
        assert!(!a.is_contiguous_with(&alien));

        let whole = a.widened(100);
        assert_eq!(whole.as_slice(), parent.as_slice());
        assert_eq!(whole.stream_base(), 0);
    }

    #[test]
    fn join_view_windows() {
        let jr = JoinResult { outer_oids: (0..50).collect(), inner_oids: (100..150).collect() };
        let parent = JoinView::new(jr);
        assert_eq!(parent.len(), 50);
        assert_eq!(parent.backing_len(), 50);

        let w = parent.slice(10, 20);
        assert_eq!(w.outer(), (10..30).collect::<Vec<Oid>>());
        assert_eq!(w.inner(), (110..130).collect::<Vec<Oid>>());
        assert_eq!(w.stream_base(), 10);
        assert_eq!(w.offset(), 10);
        assert!(w.shares_backing_with(&parent));

        let rest = parent.slice(30, 99);
        assert_eq!(rest.len(), 20);
        assert!(w.is_contiguous_with(&rest));
        assert_eq!(w.widened(40).outer(), (10..50).collect::<Vec<Oid>>());
    }

    #[test]
    fn windowed_byte_size_reports_window_not_backing() {
        let parent = Chunk::oids((0..1000).collect());
        assert_eq!(parent.byte_size(), 8000);
        let window = parent.as_oids_view().unwrap().slice(100, 10);
        assert_eq!(window.backing_len(), 1000);
        assert_eq!(Chunk::Oids(window).byte_size(), 80);

        let jr = JoinResult { outer_oids: (0..100).collect(), inner_oids: (0..100).collect() };
        let jw = JoinView::new(jr).slice(0, 4);
        assert_eq!(Chunk::Join(jw).byte_size(), 64);
    }

    #[test]
    fn outputs_compare() {
        let a = Chunk::Column(Column::from_i64(vec![1, 2])).to_output();
        let b = Chunk::Column(Column::from_i64(vec![1, 2])).to_output();
        let c = Chunk::Column(Column::from_i64(vec![2, 1])).to_output();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.rows(), 2);

        let s = Chunk::Scalar(ScalarValue::I64(3)).to_output();
        assert_eq!(s, QueryOutput::Scalar(ScalarValue::I64(3)));
        assert_eq!(s.rows(), 1);
        assert!(s.summary().contains('3'));
    }

    #[test]
    fn join_and_hash_outputs() {
        let inner = Column::from_i64(vec![1, 2]);
        let ht = JoinHashTable::build(&inner).unwrap();
        let out = Chunk::Hash(Arc::new(ht)).to_output();
        assert!(matches!(out, QueryOutput::Opaque(_)));
        assert_eq!(out.rows(), 0);

        let jr = JoinResult { outer_oids: vec![0, 1], inner_oids: vec![5, 6] };
        let out = Chunk::join(jr).to_output();
        assert_eq!(out, QueryOutput::JoinPairs(vec![(0, 5), (1, 6)]));
        assert!(out.summary().contains("2 join pairs"));
    }

    #[test]
    fn groups_summary() {
        let keys = Column::from_i64(vec![1, 1, 2, 3, 4]);
        let vals = Column::from_i64(vec![1, 1, 1, 1, 1]);
        let g = apq_operators::grouped_agg(AggFunc::Count, &keys, &vals).unwrap();
        let out = Chunk::Grouped(Arc::new(g)).to_output();
        assert_eq!(out.rows(), 4);
        assert!(out.summary().contains("4 groups"));
        assert!(out.summary().contains("..."));
    }
}
