//! Error type for the execution engine.

use std::fmt;

use apq_columnar::ColumnarError;
use apq_operators::OperatorError;

/// Convenience alias used throughout the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors raised while validating or executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An error bubbled up from an operator.
    Operator(OperatorError),
    /// An error bubbled up from the storage layer.
    Columnar(ColumnarError),
    /// The plan is structurally invalid (cycle, dangling input, bad arity, ...).
    InvalidPlan(String),
    /// A node received an input chunk of the wrong kind.
    InvalidInput {
        /// The node that rejected its input.
        node: usize,
        /// Description of what was expected.
        expected: &'static str,
        /// Kind of chunk that was found.
        found: &'static str,
    },
    /// The referenced table or column does not exist in the catalog.
    UnknownObject(String),
    /// A worker thread panicked while executing an operator.
    WorkerPanicked(String),
    /// The engine was shut down while queries were still running.
    EngineShutDown,
    /// The query's handle was cancelled before it finished.
    Cancelled,
    /// A submission was made on a closed service session
    /// ([`crate::service::Session`]).
    SessionClosed,
    /// The query's deadline ([`crate::QueryHandle::deadline`]) expired
    /// before it finished; partial work was cancelled.
    DeadlineExceeded,
    /// The service shed this submission because its queues are full
    /// ([`crate::ServiceConfig::max_queued`]); retry after backing off.
    Overloaded {
        /// Suggested client backoff before resubmitting, derived from the
        /// observed service latency and current queue depth.
        retry_after_hint: std::time::Duration,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Operator(e) => write!(f, "operator error: {e}"),
            EngineError::Columnar(e) => write!(f, "storage error: {e}"),
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::InvalidInput { node, expected, found } => {
                write!(f, "node {node}: expected {expected} input, found {found}")
            }
            EngineError::UnknownObject(name) => write!(f, "unknown catalog object: {name}"),
            EngineError::WorkerPanicked(msg) => write!(f, "worker panicked: {msg}"),
            EngineError::EngineShutDown => write!(f, "engine has been shut down"),
            EngineError::Cancelled => write!(f, "query was cancelled"),
            EngineError::SessionClosed => write!(f, "session is closed"),
            EngineError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            EngineError::Overloaded { retry_after_hint } => {
                write!(f, "service overloaded; retry after {retry_after_hint:?}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Operator(e) => Some(e),
            EngineError::Columnar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OperatorError> for EngineError {
    fn from(e: OperatorError) -> Self {
        EngineError::Operator(e)
    }
}

impl From<ColumnarError> for EngineError {
    fn from(e: ColumnarError) -> Self {
        EngineError::Columnar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = OperatorError::DivisionByZero.into();
        assert!(matches!(e, EngineError::Operator(_)));
        assert!(e.to_string().contains("operator error"));
        let e: EngineError = ColumnarError::UnknownTable("t".into()).into();
        assert!(matches!(e, EngineError::Columnar(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::InvalidInput { node: 3, expected: "oids", found: "column" };
        assert!(e.to_string().contains("node 3"));
        assert!(EngineError::EngineShutDown.to_string().contains("shut down"));
        assert!(EngineError::Cancelled.to_string().contains("cancelled"));
        assert!(EngineError::SessionClosed.to_string().contains("session"));
        assert!(EngineError::DeadlineExceeded.to_string().contains("deadline"));
        let e = EngineError::Overloaded { retry_after_hint: std::time::Duration::from_millis(5) };
        assert!(e.to_string().contains("overloaded"));
    }
}
