//! Run-time noise injection.
//!
//! The convergence algorithm must cope with "a noisy environment (operating
//! system process interference, memory flushes, etc.)" where "the execution
//! time of some of the runs is often greater than the serial plan execution
//! time" (paper §3.3.3). Real OS noise is neither controllable nor
//! reproducible, so the engine can inject synthetic per-operator delays:
//! with a configurable probability an executed operator is stretched by a
//! uniformly random delay. Experiments that test outlier handling switch
//! this on; all other experiments leave it off.
//!
//! Delay-only noise is the *benign* end of the failure spectrum. The
//! generalized chaos layer — panics, dispatch stalls and spurious
//! cancellations on top of delays, with site-keyed determinism and scripted
//! schedules — lives in [`crate::fault`]; the failure semantics each fault
//! must surface as are documented in `docs/architecture.md` §9. This module
//! stays as the lightweight timing-noise tool the convergence experiments
//! were built on.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic noise injector.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Probability that an operator execution is delayed (0.0 ..= 1.0).
    pub probability: f64,
    /// Maximum injected delay per affected operator, in microseconds.
    pub max_delay_us: u64,
    /// RNG seed, so noisy experiments stay reproducible.
    pub seed: u64,
}

impl NoiseConfig {
    /// A mild noise profile suitable for convergence-robustness tests.
    pub fn mild(seed: u64) -> Self {
        NoiseConfig { probability: 0.05, max_delay_us: 2_000, seed }
    }

    /// A heavy noise profile producing occasional large peaks (paper Fig. 11,
    /// the spike around run 30).
    pub fn heavy(seed: u64) -> Self {
        NoiseConfig { probability: 0.15, max_delay_us: 20_000, seed }
    }
}

/// Run-time state of the noise injector (shared by all workers).
#[derive(Debug)]
pub struct NoiseInjector {
    config: NoiseConfig,
    rng: Mutex<StdRng>,
}

impl NoiseInjector {
    /// Creates an injector from its configuration.
    pub fn new(config: NoiseConfig) -> Self {
        let rng = Mutex::new(StdRng::seed_from_u64(config.seed));
        NoiseInjector { config, rng }
    }

    /// The configuration this injector was built from.
    pub fn config(&self) -> &NoiseConfig {
        &self.config
    }

    /// Draws the delay to inject after one operator execution (0 most of the time).
    pub fn draw_delay_us(&self) -> u64 {
        let mut rng = self.rng.lock();
        if rng.gen_bool(self.config.probability.clamp(0.0, 1.0)) {
            rng.gen_range(0..=self.config.max_delay_us)
        } else {
            0
        }
    }

    /// Sleeps for a freshly drawn delay (no-op most of the time).
    pub fn inject(&self) {
        let delay = self.draw_delay_us();
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_micros(delay));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_delays() {
        let inj = NoiseInjector::new(NoiseConfig { probability: 0.0, max_delay_us: 1000, seed: 1 });
        for _ in 0..100 {
            assert_eq!(inj.draw_delay_us(), 0);
        }
        inj.inject(); // must not sleep measurably
    }

    #[test]
    fn full_probability_always_delays_within_bounds() {
        let inj = NoiseInjector::new(NoiseConfig { probability: 1.0, max_delay_us: 50, seed: 2 });
        let mut seen_nonzero = false;
        for _ in 0..200 {
            let d = inj.draw_delay_us();
            assert!(d <= 50);
            seen_nonzero |= d > 0;
        }
        assert!(seen_nonzero);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = NoiseInjector::new(NoiseConfig::mild(42));
        let b = NoiseInjector::new(NoiseConfig::mild(42));
        let da: Vec<u64> = (0..50).map(|_| a.draw_delay_us()).collect();
        let db: Vec<u64> = (0..50).map(|_| b.draw_delay_us()).collect();
        assert_eq!(da, db);
        assert_eq!(a.config(), b.config());
    }

    #[test]
    fn presets_are_ordered() {
        assert!(NoiseConfig::heavy(1).max_delay_us > NoiseConfig::mild(1).max_delay_us);
        assert!(NoiseConfig::heavy(1).probability > NoiseConfig::mild(1).probability);
    }
}
