//! Work sharing across concurrent queries: cooperative shared scans and
//! partial-aggregate reuse.
//!
//! The paper's motivating workload is "millions of users" submitting
//! overlapping analytical queries; the MonetDB/Vectorwise lineage it
//! evaluates against answers that pressure with **Cooperative Scans**
//! (Zukowski et al.): when N in-flight queries read the same table, the
//! buffer manager streams each page once and fans it to every attached
//! consumer, so the concurrent scans cost ~1 table pass instead of N. This
//! module is that idea adapted to the engine's morsel driver
//! ([`crate::pipeline`]), plus a noria-style partial-result layer on top.
//!
//! # Shared scans ([`ScanGroup`])
//!
//! A [`ScanRegistry`] keys one [`ScanGroup`] per `(catalog, table, column)`.
//! Pipelines whose source is a shareable scan
//! ([`crate::pipeline`]'s `Pipeline::shareable`) attach to the group for the
//! duration of their run; each morsel window the group's members need is
//! **produced exactly once** and published as a zero-copy `Column` window
//! (an `Arc` slice of the base column — the PR-1 `stream_base` invariant
//! guarantees the cached window is bit-for-bit what executing the scan on
//! that sub-range produces). The coordination protocol is *produce-or-reuse*,
//! never wait:
//!
//! - the first consumer to reach a window executes the scan slice and
//!   publishes it (a **private** morsel);
//! - every other consumer — including late attachers circling back for the
//!   prefix they missed, the elevator of the Cooperative Scans model — finds
//!   the window already published and reuses it (a **shared** morsel).
//!
//! Because no member ever blocks on another member's progress, detaching a
//! consumer mid-stream (cancellation, deadline expiry, injected fault) can
//! never stall the remaining members: detach is a counter decrement, and the
//! produced windows stay valid for whoever still needs them.
//!
//! # Partial-aggregate reuse
//!
//! Repeated query shapes re-aggregate the same subtree over and over. The
//! registry keeps a bounded LRU of published **aggregate partials**
//! (`ScalarAgg` / `GroupAgg` pipeline terminals), keyed on the canonical
//! subtree signature ([`crate::plan::Plan::subtree_signature`]), the catalog
//! identity, and the morsel grid that produced them. A later query whose
//! fused decomposition contains a step with the same key resumes from the
//! cached partial instead of rescanning — the executor seeds the step's
//! terminal result and prunes every upstream step that fed only it. The
//! cache is chunk-typed: a fused `GroupAgg` terminal stores its
//! `Chunk::Grouped` partial (per-morsel group states merged in morsel
//! order, so first-occurrence key order and float merge order match
//! whole-column execution), and a repeated group-by resumes from it
//! exactly as a scalar aggregate does. The grid component of the key makes
//! any morsel-size drift (e.g. controller re-sizing) a safe miss.
//!
//! # Invalidation
//!
//! Groups and partials are pinned to a catalog *allocation* (`Weak<Catalog>`
//! identity), so swapping catalogs can never serve stale windows. Explicit
//! per-table invalidation ([`ScanRegistry::invalidate_table`]) drops the
//! table's groups **and** every cached partial whose subtree read the table;
//! [`ScanRegistry::invalidate_all`] flushes everything.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use apq_columnar::Catalog;

use crate::chunk::Chunk;
use crate::error::Result;

/// Configuration of the work-sharing subsystem (shared scans +
/// partial-aggregate reuse). Enabled by attaching it to
/// [`crate::EngineConfig::sharing`] (builder:
/// [`crate::EngineConfig::with_sharing`]).
#[derive(Debug, Clone)]
pub struct SharingConfig {
    /// Maximum cached morsel windows per scan group. Windows are zero-copy
    /// `Arc` slices of the base column, so the bound caps bookkeeping, not
    /// data copies; once full, further windows execute privately without
    /// being published.
    pub max_windows_per_group: usize,
    /// Capacity of the partial-aggregate LRU (entries, across all queries).
    pub partial_cache_capacity: usize,
}

impl Default for SharingConfig {
    fn default() -> Self {
        SharingConfig { max_windows_per_group: 4096, partial_cache_capacity: 64 }
    }
}

impl SharingConfig {
    /// Sets the per-group window bound (builder style).
    pub fn with_max_windows_per_group(mut self, max: usize) -> Self {
        self.max_windows_per_group = max;
        self
    }

    /// Sets the partial-aggregate cache capacity (builder style).
    pub fn with_partial_cache_capacity(mut self, capacity: usize) -> Self {
        self.partial_cache_capacity = capacity;
        self
    }
}

/// Cumulative counters of the work-sharing subsystem, surfaced through
/// [`crate::Engine::sharing_stats`] and the service layer's
/// `ServiceStats::{scan_groups, morsels_shared, partials_reused}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Scan groups created since the engine started.
    pub scan_groups: u64,
    /// Morsels served from a group's published windows (work saved: each of
    /// these would have been a private scan slice without sharing).
    pub morsels_shared: u64,
    /// Morsels produced by executing the scan slice (exactly one per window
    /// in the steady state — the "~1 table pass" of the acceptance bar).
    pub morsels_private: u64,
    /// Aggregate steps served from the partial cache instead of rescanning.
    pub partials_reused: u64,
    /// Aggregate partials published into the cache.
    pub partials_stored: u64,
}

/// Shared monotonic counters, cloned into every group the registry creates.
#[derive(Debug, Default)]
struct SharingCounters {
    scan_groups: AtomicU64,
    morsels_shared: AtomicU64,
    morsels_private: AtomicU64,
    partials_reused: AtomicU64,
    partials_stored: AtomicU64,
}

/// Identity key of a scan group: the catalog *allocation* plus the scanned
/// table/column. The pointer is only ever compared, never dereferenced; the
/// group's `Weak<Catalog>` guards against an address being recycled by a
/// later allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    catalog: usize,
    table: String,
    column: String,
}

/// Per-`(catalog, table, column)` shared-scan coordinator: a bounded map of
/// published morsel windows plus membership accounting. See the module docs
/// for the produce-or-reuse protocol.
#[derive(Debug)]
pub struct ScanGroup {
    /// The catalog allocation the windows were produced against; a dead or
    /// different catalog makes every window unreachable (checked on attach).
    catalog: Weak<Catalog>,
    /// Published windows, keyed by the clamped `(lo, hi)` row range.
    windows: Mutex<HashMap<(usize, usize), Chunk>>,
    /// Currently attached consumers (pipelines mid-flight).
    members: AtomicUsize,
    /// Highest row bound any member has published — the stream frontier a
    /// late attacher circles back from (diagnostics; nothing blocks on it).
    frontier: AtomicUsize,
    max_windows: usize,
    counters: Arc<SharingCounters>,
}

impl ScanGroup {
    /// Currently attached consumers.
    pub fn members(&self) -> usize {
        self.members.load(Ordering::Acquire)
    }

    /// Highest row bound published by any member so far.
    pub fn frontier(&self) -> usize {
        self.frontier.load(Ordering::Relaxed)
    }

    /// The produce-or-reuse protocol for one morsel window `[lo, hi)`:
    /// returns the published window when a member already produced it
    /// (`true` = shared), otherwise runs `produce` and publishes the result
    /// (`false` = private). Two members racing on the same unpublished
    /// window both produce — the first publication wins, nobody waits.
    fn window(
        &self,
        lo: usize,
        hi: usize,
        produce: impl FnOnce() -> Result<Chunk>,
    ) -> Result<(Chunk, bool)> {
        if let Some(chunk) = self.windows.lock().get(&(lo, hi)) {
            self.counters.morsels_shared.fetch_add(1, Ordering::Relaxed);
            return Ok((chunk.clone(), true));
        }
        let chunk = produce()?;
        self.counters.morsels_private.fetch_add(1, Ordering::Relaxed);
        self.frontier.fetch_max(hi, Ordering::Relaxed);
        let mut windows = self.windows.lock();
        if windows.len() < self.max_windows {
            windows.entry((lo, hi)).or_insert_with(|| chunk.clone());
        }
        Ok((chunk, false))
    }
}

/// RAII membership of one pipeline in a [`ScanGroup`]: created by
/// [`ScanRegistry::attach`], detached (a counter decrement — never a wait)
/// on drop. Cancellation, deadline and fault paths drop the run state and
/// with it this guard, so a dying query can never stall the group.
#[derive(Debug)]
pub struct SharedScan {
    group: Arc<ScanGroup>,
}

impl SharedScan {
    /// Produce-or-reuse one morsel window; see [`ScanGroup`].
    pub fn window(
        &self,
        lo: usize,
        hi: usize,
        produce: impl FnOnce() -> Result<Chunk>,
    ) -> Result<(Chunk, bool)> {
        self.group.window(lo, hi, produce)
    }

    /// The group this membership belongs to.
    pub fn group(&self) -> &Arc<ScanGroup> {
        &self.group
    }
}

impl Drop for SharedScan {
    fn drop(&mut self) {
        self.group.members.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One cached aggregate partial.
#[derive(Debug, Clone)]
struct PartialEntry {
    chunk: Chunk,
    /// Catalog allocation the partial was computed against.
    catalog: Weak<Catalog>,
    /// Tables the subtree read — the per-table invalidation key set.
    tables: Vec<String>,
}

/// Bounded LRU of aggregate partials (the `crate::service` cache idiom,
/// local so the engine does not depend on the service layer).
#[derive(Debug, Default)]
struct PartialCache {
    map: HashMap<String, PartialEntry>,
    recency: VecDeque<String>,
}

impl PartialCache {
    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.recency.iter().position(|k| k == key) {
            self.recency.remove(pos);
        }
        self.recency.push_back(key.to_string());
    }
}

/// The engine-wide work-sharing coordinator: scan groups + partial cache.
/// One per [`crate::Engine`] when sharing is enabled.
#[derive(Debug)]
pub struct ScanRegistry {
    config: SharingConfig,
    groups: Mutex<HashMap<GroupKey, Arc<ScanGroup>>>,
    partials: Mutex<PartialCache>,
    counters: Arc<SharingCounters>,
}

impl ScanRegistry {
    /// Creates an empty registry.
    pub fn new(config: SharingConfig) -> Self {
        ScanRegistry {
            config,
            groups: Mutex::new(HashMap::new()),
            partials: Mutex::new(PartialCache::default()),
            counters: Arc::new(SharingCounters::default()),
        }
    }

    /// Attaches a consumer to the `(catalog, table, column)` scan group,
    /// creating the group on first touch. A group found pinned to a dead or
    /// different catalog allocation (the address was recycled) is replaced
    /// wholesale — stale windows are unreachable by construction.
    pub fn attach(&self, catalog: &Arc<Catalog>, table: &str, column: &str) -> SharedScan {
        let key = GroupKey {
            catalog: Arc::as_ptr(catalog) as usize,
            table: table.to_string(),
            column: column.to_string(),
        };
        let mut groups = self.groups.lock();
        let group = groups
            .entry(key)
            .and_modify(|g| {
                let live = g.catalog.upgrade().is_some_and(|c| Arc::ptr_eq(&c, catalog));
                if !live {
                    *g = Self::new_group(catalog, &self.config, &self.counters);
                }
            })
            .or_insert_with(|| Self::new_group(catalog, &self.config, &self.counters));
        group.members.fetch_add(1, Ordering::AcqRel);
        SharedScan { group: Arc::clone(group) }
    }

    fn new_group(
        catalog: &Arc<Catalog>,
        config: &SharingConfig,
        counters: &Arc<SharingCounters>,
    ) -> Arc<ScanGroup> {
        counters.scan_groups.fetch_add(1, Ordering::Relaxed);
        Arc::new(ScanGroup {
            catalog: Arc::downgrade(catalog),
            windows: Mutex::new(HashMap::new()),
            members: AtomicUsize::new(0),
            frontier: AtomicUsize::new(0),
            max_windows: config.max_windows_per_group.max(1),
            counters: Arc::clone(counters),
        })
    }

    /// Looks up a cached aggregate partial for `(catalog, grid, signature)`.
    /// Entries pinned to a dead or different catalog allocation are evicted
    /// on sight instead of served.
    pub fn partial_get(
        &self,
        catalog: &Arc<Catalog>,
        morsel_rows: usize,
        signature: &str,
    ) -> Option<Chunk> {
        let key = Self::partial_key(catalog, morsel_rows, signature);
        let mut cache = self.partials.lock();
        let live = match cache.map.get(&key) {
            Some(entry) => entry.catalog.upgrade().is_some_and(|c| Arc::ptr_eq(&c, catalog)),
            None => return None,
        };
        if !live {
            cache.map.remove(&key);
            cache.recency.retain(|k| k != &key);
            return None;
        }
        cache.touch(&key);
        let chunk = cache.map.get(&key).map(|e| e.chunk.clone());
        if chunk.is_some() {
            self.counters.partials_reused.fetch_add(1, Ordering::Relaxed);
        }
        chunk
    }

    /// Publishes an aggregate partial, evicting the coldest entry when the
    /// cache is full.
    pub fn partial_put(
        &self,
        catalog: &Arc<Catalog>,
        morsel_rows: usize,
        signature: &str,
        tables: Vec<String>,
        chunk: Chunk,
    ) {
        let capacity = self.config.partial_cache_capacity;
        if capacity == 0 {
            return;
        }
        let key = Self::partial_key(catalog, morsel_rows, signature);
        let mut cache = self.partials.lock();
        if !cache.map.contains_key(&key) {
            while cache.map.len() >= capacity {
                match cache.recency.pop_front() {
                    Some(coldest) => {
                        cache.map.remove(&coldest);
                    }
                    None => break,
                }
            }
            self.counters.partials_stored.fetch_add(1, Ordering::Relaxed);
        }
        cache
            .map
            .insert(key.clone(), PartialEntry { chunk, catalog: Arc::downgrade(catalog), tables });
        cache.touch(&key);
    }

    fn partial_key(catalog: &Arc<Catalog>, morsel_rows: usize, signature: &str) -> String {
        format!("{:x}/{morsel_rows}/{signature}", Arc::as_ptr(catalog) as usize)
    }

    /// Drops every scan group over `table` and every cached partial whose
    /// subtree read `table` — the service layer calls this alongside its
    /// result-cache invalidation so a mutated table can never serve stale
    /// windows or partials.
    pub fn invalidate_table(&self, table: &str) {
        self.groups.lock().retain(|key, _| key.table != table);
        let cache = &mut *self.partials.lock();
        cache.map.retain(|_, entry| !entry.tables.iter().any(|t| t == table));
        let map = &cache.map;
        cache.recency.retain(|k| map.contains_key(k));
    }

    /// Flushes every scan group and cached partial (catalog swaps, global
    /// invalidation).
    pub fn invalidate_all(&self) {
        self.groups.lock().clear();
        let mut cache = self.partials.lock();
        cache.map.clear();
        cache.recency.clear();
    }

    /// Scan groups currently registered (post-invalidation live count).
    pub fn live_groups(&self) -> usize {
        self.groups.lock().len()
    }

    /// Cached partials currently held.
    pub fn live_partials(&self) -> usize {
        self.partials.lock().map.len()
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> SharingStats {
        SharingStats {
            scan_groups: self.counters.scan_groups.load(Ordering::Relaxed),
            morsels_shared: self.counters.morsels_shared.load(Ordering::Relaxed),
            morsels_private: self.counters.morsels_private.load(Ordering::Relaxed),
            partials_reused: self.counters.partials_reused.load(Ordering::Relaxed),
            partials_stored: self.counters.partials_stored.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::TableBuilder;

    fn catalog(rows: usize) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("t").i64_column("v", (0..rows as i64).collect()).build().unwrap(),
        );
        Arc::new(c)
    }

    fn produce(cat: &Arc<Catalog>, lo: usize, hi: usize) -> Result<Chunk> {
        let col = cat.table("t").unwrap().column("v").unwrap();
        let end = hi.min(col.len());
        let start = lo.min(end);
        Ok(Chunk::Column(col.slice(start, end - start).unwrap()))
    }

    #[test]
    fn second_consumer_reuses_published_windows() {
        let reg = ScanRegistry::new(SharingConfig::default());
        let cat = catalog(100);
        let first = reg.attach(&cat, "t", "v");
        let second = reg.attach(&cat, "t", "v");
        assert_eq!(first.group().members(), 2);

        let (a, shared) = first.window(0, 50, || produce(&cat, 0, 50)).unwrap();
        assert!(!shared, "first producer must be private");
        let (b, shared) = second.window(0, 50, || panic!("window must be reused")).unwrap();
        assert!(shared);
        assert_eq!(a.rows(), b.rows());
        assert_eq!(first.group().frontier(), 50);

        let stats = reg.stats();
        assert_eq!(stats.scan_groups, 1);
        assert_eq!(stats.morsels_private, 1);
        assert_eq!(stats.morsels_shared, 1);
    }

    #[test]
    fn detach_is_a_counter_decrement() {
        let reg = ScanRegistry::new(SharingConfig::default());
        let cat = catalog(10);
        let a = reg.attach(&cat, "t", "v");
        let b = reg.attach(&cat, "t", "v");
        let group = Arc::clone(b.group());
        drop(a); // a "cancelled" member leaves without touching b
        assert_eq!(group.members(), 1);
        let (_, shared) = b.window(0, 10, || produce(&cat, 0, 10)).unwrap();
        assert!(!shared, "survivor still produces normally");
        drop(b);
        assert_eq!(group.members(), 0);
        // Windows survive the last detach: a later query still reuses them.
        let late = reg.attach(&cat, "t", "v");
        let (_, shared) = late.window(0, 10, || panic!("must reuse")).unwrap();
        assert!(shared);
    }

    #[test]
    fn window_bound_caps_publication_not_execution() {
        let reg = ScanRegistry::new(SharingConfig::default().with_max_windows_per_group(1));
        let cat = catalog(100);
        let scan = reg.attach(&cat, "t", "v");
        let (_, s1) = scan.window(0, 10, || produce(&cat, 0, 10)).unwrap();
        let (_, s2) = scan.window(10, 20, || produce(&cat, 10, 20)).unwrap();
        assert!(!s1 && !s2);
        // The second window was produced but not published (bound hit).
        let (_, shared) = scan.window(10, 20, || produce(&cat, 10, 20)).unwrap();
        assert!(!shared);
        // The first window is still served.
        let (_, shared) = scan.window(0, 10, || panic!("must reuse")).unwrap();
        assert!(shared);
    }

    #[test]
    fn catalog_identity_gates_reuse() {
        let reg = ScanRegistry::new(SharingConfig::default());
        let cat1 = catalog(10);
        let scan = reg.attach(&cat1, "t", "v");
        scan.window(0, 10, || produce(&cat1, 0, 10)).unwrap();
        drop(scan);
        drop(cat1); // allocation dies; a recycled address must not serve it
        let cat2 = catalog(10);
        let scan = reg.attach(&cat2, "t", "v");
        // Either a fresh group (different address) or a replaced group (same
        // address, dead weak): both must produce privately.
        let (_, shared) = scan.window(0, 10, || produce(&cat2, 0, 10)).unwrap();
        assert!(!shared);
    }

    #[test]
    fn partial_cache_round_trips_and_bounds() {
        let reg = ScanRegistry::new(SharingConfig::default().with_partial_cache_capacity(2));
        let cat = catalog(10);
        let chunk = produce(&cat, 0, 10).unwrap();
        reg.partial_put(&cat, 64, "sig-a", vec!["t".into()], chunk.clone());
        reg.partial_put(&cat, 64, "sig-b", vec!["t".into()], chunk.clone());
        assert!(reg.partial_get(&cat, 64, "sig-a").is_some());
        // Different grid or signature: miss.
        assert!(reg.partial_get(&cat, 32, "sig-a").is_none());
        assert!(reg.partial_get(&cat, 64, "sig-c").is_none());
        // Capacity 2: inserting a third evicts the coldest (sig-b; sig-a was
        // touched by the get above).
        reg.partial_put(&cat, 64, "sig-c", vec!["t".into()], chunk.clone());
        assert!(reg.partial_get(&cat, 64, "sig-b").is_none());
        assert!(reg.partial_get(&cat, 64, "sig-a").is_some());
        assert_eq!(reg.live_partials(), 2);
        let stats = reg.stats();
        assert_eq!(stats.partials_stored, 3);
        assert!(stats.partials_reused >= 2);
    }

    #[test]
    fn invalidation_flushes_groups_and_partials() {
        let reg = ScanRegistry::new(SharingConfig::default());
        let cat = catalog(10);
        let scan = reg.attach(&cat, "t", "v");
        scan.window(0, 10, || produce(&cat, 0, 10)).unwrap();
        reg.partial_put(&cat, 64, "sig", vec!["t".into()], produce(&cat, 0, 10).unwrap());
        reg.partial_put(&cat, 64, "other", vec!["u".into()], produce(&cat, 0, 10).unwrap());
        assert_eq!(reg.live_groups(), 1);
        assert_eq!(reg.live_partials(), 2);

        reg.invalidate_table("t");
        assert_eq!(reg.live_groups(), 0, "table groups flushed");
        assert_eq!(reg.live_partials(), 1, "only partials reading t flushed");
        assert!(reg.partial_get(&cat, 64, "sig").is_none());
        assert!(reg.partial_get(&cat, 64, "other").is_some());

        // The old membership still detaches cleanly after invalidation.
        drop(scan);

        reg.invalidate_all();
        assert_eq!(reg.live_partials(), 0);
        // A fresh attach after invalidation produces privately again.
        let scan = reg.attach(&cat, "t", "v");
        let (_, shared) = scan.window(0, 10, || produce(&cat, 0, 10)).unwrap();
        assert!(!shared);
    }
}
