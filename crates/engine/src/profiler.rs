//! Execution profiling.
//!
//! The paper's run-time environment includes "a profiler \[that\] gathers
//! performance data on an executed operator basis ... the profiled data
//! consists of operator's execution time, memory claims, and thread
//! affiliation id" (§2). Adaptive parallelization is driven purely by this
//! feedback, and the multi-core-utilization analysis (Figs. 19/20, Table 5)
//! is read straight off it, so the profile captures:
//!
//! * per operator: start offset, duration, executing worker, output rows and
//!   bytes (memory claim);
//! * per query: wall-clock time, worker-pool size, and the derived metrics
//!   *parallelism usage* (aggregate busy time / (wall time × workers)) and
//!   *multi-core utilization* (distinct workers used / workers available).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

use crate::plan::NodeId;

/// Profile of one executed operator.
#[derive(Debug, Clone)]
pub struct OperatorProfile {
    /// Plan node id.
    pub node: NodeId,
    /// Operator family name (`select`, `join`, `union`, ...).
    pub name: &'static str,
    /// Start of execution, microseconds since the query started.
    pub start_us: u64,
    /// Execution time in microseconds.
    pub duration_us: u64,
    /// Time the operator spent queued between becoming runnable (all inputs
    /// materialized) and starting execution, in microseconds. Separates
    /// "operator was slow" from "operator sat in the queue" — the scheduler-
    /// interference signal the adaptive convergence loop consumes.
    pub queue_wait_us: u64,
    /// Index of the worker thread that executed the operator.
    pub worker: usize,
    /// Rows in the operator's output chunk.
    pub rows_out: usize,
    /// Approximate bytes of the operator's output chunk (memory claim).
    /// For windowed candidate/join streams ([`crate::chunk::OidsView`],
    /// [`crate::chunk::JoinView`]) this is the *window's* bytes, not the
    /// shared backing's — so per-morsel claims over one backing sum to the
    /// backing size once, never N× it.
    pub bytes_out: usize,
}

/// Which lifecycle step produced a [`DopEvent`].
///
/// The reservation phases ([`DopPhase::Reserve`], [`DopPhase::Submit`])
/// only appear for queries admitted through the unified census path
/// ([`crate::Engine::reserve_admitted`] / the service layer in
/// [`crate::service`]): a reservation enters the live-query registry at
/// *issue* time, so its grant and the gap until submission are both
/// visible in the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DopPhase {
    /// Admit-time grant of a directly registered query
    /// ([`crate::Engine::register_query`]); always at offset 0.
    Admit,
    /// Admit-time grant of a *reservation*: the query is census-visible
    /// (counted by controller ticks) but not yet submitted; always at
    /// offset 0.
    Reserve,
    /// A reserved query began executing (`execute_with_handle` on the
    /// pre-registered handle). Records the grant in force at submission —
    /// the `at_us` gap from the `Reserve` event is the reservation-held
    /// window.
    Submit,
    /// Mid-flight re-grant or claw-back via
    /// [`crate::QueryHandle::set_admitted_dop`] — made by the client or by
    /// the elastic resource controller ([`crate::controller`]).
    Regrant,
    /// The query's deadline expired ([`crate::QueryHandle::deadline`]):
    /// the effective DOP collapses to 0 and the query fails with
    /// [`crate::EngineError::DeadlineExceeded`]. Recorded at most once,
    /// by whichever checkpoint observed the expiry first.
    Timeout,
}

/// One point of a query's admitted-DOP timeline: the degree of parallelism
/// granted at a moment of the query's life. The first event (offset 0) is
/// the admit-time grant ([`DopPhase::Admit`] or [`DopPhase::Reserve`]);
/// later events are submissions of reservations ([`DopPhase::Submit`]) and
/// mid-flight re-grants/claw-backs ([`DopPhase::Regrant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DopEvent {
    /// Microseconds since the query handle was created.
    pub at_us: u64,
    /// The admitted degree of parallelism from this point on (`0` =
    /// unlimited).
    pub dop: usize,
    /// Which lifecycle step recorded this event.
    pub phase: DopPhase,
}

/// Profile of one fused pipeline executed in morsel-driven mode
/// ([`crate::pipeline`]): how the pipeline's input was cut into morsels and
/// which workers pulled them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineProfile {
    /// Index of the pipeline's step in the fused decomposition of the plan.
    pub step: usize,
    /// Member node ids (scan source first, then the fused stages in chain
    /// order; the last entry is the terminal whose output was published).
    pub nodes: Vec<NodeId>,
    /// Number of morsels the source was cut into (≥ 1; empty inputs still
    /// run one morsel).
    pub n_morsels: usize,
    /// Morsel size used for *this* pipeline launch, in rows. With a static
    /// configuration this equals [`crate::EngineConfig::morsel_rows`]; under
    /// adaptive sizing ([`crate::controller`]) it is whatever the per-query
    /// override held when the pipeline launched, so sizes may differ across
    /// pipelines of one query.
    pub morsel_rows: usize,
    /// Rows of the pipeline's source (effective scan range or input chunk).
    pub source_rows: usize,
    /// Total time the pipeline's morsel tasks spent queued, microseconds.
    pub queue_wait_us: u64,
    /// Morsels executed per worker, indexed by worker id — the locality
    /// signal of the work-stealing comparison (fig19's morsel counters).
    pub morsels_by_worker: Vec<u64>,
    /// Morsels of this pipeline served from a shared scan group's published
    /// windows ([`crate::sharing`]) instead of re-executing the scan slice;
    /// `n_morsels - morsels_shared` were executed privately. Always 0 when
    /// sharing is disabled.
    pub morsels_shared: u64,
    /// True when the pipeline's terminal stage is a fused `GroupAgg`: each
    /// morsel produced a partial grouped aggregate and the driver merged
    /// the partials in morsel order (the `MergeGrouped` guarantee that
    /// keeps float results byte-exact).
    pub groupagg_fused: bool,
    /// Typed-cache hits ([`apq_columnar::typed_cache_hits`]) observed
    /// process-wide between this pipeline's launch and its assembly. On an
    /// otherwise idle engine this is the pipeline's own warm typed-access
    /// count; with concurrent queries it over-approximates (the counter is
    /// global), so treat it as a warm-path activity signal, not an exact
    /// attribution.
    pub typed_cache_hits: u64,
}

/// Profile of one executed query.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// End-to-end wall-clock time of the query.
    pub wall_time: Duration,
    /// Size of the worker pool that executed the query.
    pub n_workers: usize,
    /// Number of *other* queries in flight on the engine when this query was
    /// submitted. Zero means any queue wait in this profile is self-inflicted
    /// (more ready tasks than workers), not cross-query interference.
    pub concurrent_peers: usize,
    /// Per-operator profiles (every executed node appears exactly once).
    pub operators: Vec<OperatorProfile>,
    /// Per-pipeline morsel statistics; empty in operator-at-a-time mode.
    pub pipelines: Vec<PipelineProfile>,
    /// Admitted-DOP history of the query: the admit-time grant plus every
    /// mid-flight re-grant/claw-back, in order (never empty for executed
    /// queries). A strictly increasing `dop` after the first entry is the
    /// signature of elastic re-granting (peers left, the controller widened
    /// the query's share).
    pub dop_timeline: Vec<DopEvent>,
}

impl QueryProfile {
    /// Wall-clock time in microseconds.
    pub fn wall_us(&self) -> u64 {
        self.wall_time.as_micros() as u64
    }

    /// Sum of all operator execution times ("total CPU core time").
    pub fn total_cpu_us(&self) -> u64 {
        self.operators.iter().map(|o| o.duration_us).sum()
    }

    /// Sum of all operator queue-wait times: how long ready work sat behind
    /// other work (same query or concurrent queries) before a worker picked
    /// it up. High values with low `total_cpu_us` indicate scheduler
    /// interference rather than expensive operators.
    pub fn total_queue_wait_us(&self) -> u64 {
        self.operators.iter().map(|o| o.queue_wait_us).sum()
    }

    /// Fraction of the query's total in-system operator time (queue wait +
    /// execution) that was queue wait. `0.0` on an idle machine; approaches
    /// `1.0` when the query mostly waited for workers occupied elsewhere.
    pub fn queue_wait_share(&self) -> f64 {
        let wait = self.total_queue_wait_us() as f64;
        let busy = self.total_cpu_us() as f64;
        if wait + busy == 0.0 {
            return 0.0;
        }
        wait / (wait + busy)
    }

    /// Parallelism usage: aggregate operator busy time divided by
    /// `wall time × workers`. This is the "parallelism usage" percentage the
    /// paper's tomograph prints under Figs. 19/20.
    pub fn parallelism_usage(&self) -> f64 {
        let denom = self.wall_us().max(1) * self.n_workers.max(1) as u64;
        (self.total_cpu_us() as f64 / denom as f64).min(1.0)
    }

    /// Number of distinct worker threads that executed at least one operator.
    pub fn workers_used(&self) -> usize {
        let mut seen: Vec<usize> = self.operators.iter().map(|o| o.worker).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Multi-core utilization: fraction of the available cores (workers) that
    /// were used at all during the query (paper §4.2.5).
    pub fn multi_core_utilization(&self) -> f64 {
        if self.n_workers == 0 {
            return 0.0;
        }
        self.workers_used() as f64 / self.n_workers as f64
    }

    /// Total morsels dispatched across all pipelines (0 in
    /// operator-at-a-time mode).
    pub fn total_morsels(&self) -> usize {
        self.pipelines.iter().map(|p| p.n_morsels).sum()
    }

    /// Morsels executed per worker, aggregated over all pipelines and
    /// indexed by worker id (all zeros in operator-at-a-time mode).
    pub fn morsels_by_worker(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.n_workers];
        for pipeline in &self.pipelines {
            for (worker, count) in pipeline.morsels_by_worker.iter().enumerate() {
                if let Some(slot) = out.get_mut(worker) {
                    *slot += count;
                }
            }
        }
        out
    }

    /// Morsel sizes chosen across the query's pipeline launches, in launch
    /// order (one entry per pipeline; empty in operator-at-a-time mode).
    /// Under static configuration every entry is the same; under adaptive
    /// sizing the sequence shows the controller's trajectory.
    pub fn morsel_sizes(&self) -> Vec<usize> {
        self.pipelines.iter().map(|p| p.morsel_rows).collect()
    }

    /// Total morsels served from shared scan-group windows across all
    /// pipelines ([`crate::sharing`]; 0 with sharing disabled or in
    /// operator-at-a-time mode).
    pub fn total_shared_morsels(&self) -> u64 {
        self.pipelines.iter().map(|p| p.morsels_shared).sum()
    }

    /// Number of pipelines whose terminal stage was a fused `GroupAgg`
    /// (morsel-wise grouped aggregation with in-order partial merging; 0 in
    /// operator-at-a-time mode).
    pub fn fused_groupagg_pipelines(&self) -> usize {
        self.pipelines.iter().filter(|p| p.groupagg_fused).count()
    }

    /// Sum of per-pipeline typed-cache hit deltas
    /// ([`PipelineProfile::typed_cache_hits`]); an activity signal for the
    /// warm typed-access path, exact only on an idle engine.
    pub fn total_typed_cache_hits(&self) -> u64 {
        self.pipelines.iter().map(|p| p.typed_cache_hits).sum()
    }

    /// True when the admitted DOP was raised after the admit-time grant —
    /// i.e. the query received a mid-flight elastic re-grant
    /// ([`DopPhase::Regrant`]; `Submit` events only restate the standing
    /// grant). A later grant of `0` (unlimited) counts as a raise; a query
    /// *admitted* unlimited has nothing to re-grant and always returns
    /// `false`.
    pub fn dop_was_regranted(&self) -> bool {
        match self.dop_timeline.first() {
            Some(initial) if initial.dop > 0 => self
                .dop_timeline
                .iter()
                .skip(1)
                .any(|e| e.phase == DopPhase::Regrant && (e.dop == 0 || e.dop > initial.dop)),
            _ => false,
        }
    }

    /// Profile of a specific plan node.
    pub fn operator(&self, node: NodeId) -> Option<&OperatorProfile> {
        self.operators.iter().find(|o| o.node == node)
    }

    /// The most expensive operator overall (by execution time).
    pub fn most_expensive(&self) -> Option<&OperatorProfile> {
        self.operators.iter().max_by_key(|o| o.duration_us)
    }

    /// Number of executed operators per family.
    pub fn count_by_name(&self) -> HashMap<&'static str, usize> {
        let mut out = HashMap::new();
        for op in &self.operators {
            *out.entry(op.name).or_insert(0) += 1;
        }
        out
    }

    /// Total execution time per operator family, in microseconds.
    pub fn time_by_name(&self) -> HashMap<&'static str, u64> {
        let mut out = HashMap::new();
        for op in &self.operators {
            *out.entry(op.name).or_insert(0) += op.duration_us;
        }
        out
    }

    /// Exports the per-operator profile as CSV (header plus one line per
    /// executed operator) for offline analysis or plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "node,operator,worker,start_us,duration_us,queue_wait_us,rows_out,bytes_out\n",
        );
        for op in &self.operators {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                op.node,
                op.name,
                op.worker,
                op.start_us,
                op.duration_us,
                op.queue_wait_us,
                op.rows_out,
                op.bytes_out
            );
        }
        out
    }

    /// Tomograph-style ASCII timeline: one lane per worker, time flowing to
    /// the right, each cell showing the operator family that was running
    /// (`S`elect, `J`oin, `U`nion, `F`etch, `C`alc, `A`ggregate, `.` idle).
    /// This is the textual analogue of the paper's Figs. 19/20.
    pub fn timeline(&self, width: usize) -> String {
        let width = width.max(10);
        let wall = self.wall_us().max(1);
        let mut lanes = vec![vec!['.'; width]; self.n_workers];
        for op in &self.operators {
            if op.worker >= lanes.len() {
                continue;
            }
            let from = (op.start_us * width as u64 / wall) as usize;
            let to = (((op.start_us + op.duration_us) * width as u64).div_ceil(wall) as usize)
                .min(width)
                .max(from + 1);
            let c = family_char(op.name);
            for cell in &mut lanes[op.worker][from..to.min(width)] {
                *cell = c;
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} operators, wall {:.3} ms, cpu {:.3} ms, parallelism usage {:.1}%, {} of {} workers used",
            self.operators.len(),
            self.wall_us() as f64 / 1000.0,
            self.total_cpu_us() as f64 / 1000.0,
            self.parallelism_usage() * 100.0,
            self.workers_used(),
            self.n_workers,
        );
        for (i, lane) in lanes.iter().enumerate() {
            let _ = writeln!(out, "worker {i:>3} |{}|", lane.iter().collect::<String>());
        }
        out
    }
}

fn family_char(name: &str) -> char {
    match name {
        "select" | "predmask" => 'S',
        "join" | "semijoin" | "antijoin" | "hashbuild" => 'J',
        "union" => 'U',
        "fetch" | "projectside" => 'F',
        "calc" | "ifthenelse" | "calcscalar" => 'C',
        "aggregate" | "groupby" | "finalizeagg" | "mergegroup" => 'A',
        "scan" | "slice" => 's',
        _ => 'o',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(
        node: NodeId,
        name: &'static str,
        start: u64,
        dur: u64,
        worker: usize,
    ) -> OperatorProfile {
        OperatorProfile {
            node,
            name,
            start_us: start,
            duration_us: dur,
            queue_wait_us: 5,
            worker,
            rows_out: 1,
            bytes_out: 8,
        }
    }

    fn sample() -> QueryProfile {
        QueryProfile {
            wall_time: Duration::from_micros(1000),
            n_workers: 4,
            concurrent_peers: 0,
            operators: vec![
                op(0, "scan", 0, 50, 0),
                op(1, "select", 50, 400, 0),
                op(2, "select", 50, 300, 1),
                op(3, "union", 500, 100, 1),
                op(4, "aggregate", 650, 200, 0),
            ],
            pipelines: vec![],
            dop_timeline: vec![DopEvent { at_us: 0, dop: 2, phase: DopPhase::Admit }],
        }
    }

    #[test]
    fn aggregate_metrics() {
        let p = sample();
        assert_eq!(p.wall_us(), 1000);
        assert_eq!(p.total_cpu_us(), 1050);
        assert_eq!(p.total_queue_wait_us(), 25);
        assert!((p.queue_wait_share() - 25.0 / 1075.0).abs() < 1e-9);
        assert!((p.parallelism_usage() - 1050.0 / 4000.0).abs() < 1e-9);
        assert_eq!(p.workers_used(), 2);
        assert!((p.multi_core_utilization() - 0.5).abs() < 1e-9);
        assert_eq!(p.most_expensive().unwrap().node, 1);
        assert_eq!(p.operator(3).unwrap().name, "union");
        assert!(p.operator(99).is_none());
    }

    #[test]
    fn per_family_breakdown() {
        let p = sample();
        let counts = p.count_by_name();
        assert_eq!(counts["select"], 2);
        assert_eq!(counts["union"], 1);
        let times = p.time_by_name();
        assert_eq!(times["select"], 700);
        assert_eq!(times["aggregate"], 200);
    }

    #[test]
    fn timeline_renders_lanes() {
        let p = sample();
        let t = p.timeline(40);
        assert_eq!(t.lines().count(), 5); // header + 4 workers
        assert!(t.contains("parallelism usage"));
        assert!(t.contains('S'));
        assert!(t.contains('A'));
        // Workers 2 and 3 never ran anything: fully idle lanes exist.
        assert!(t.lines().any(|l| l.contains('|') && !l.contains('S') && l.contains("....")));
        // Tiny width is clamped.
        let tiny = p.timeline(1);
        assert!(tiny.contains("worker"));
    }

    #[test]
    fn csv_export_has_one_line_per_operator() {
        let p = sample();
        let csv = p.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + p.operators.len());
        assert!(lines[0].starts_with("node,operator,worker"));
        assert!(lines[1].contains("scan"));
        assert!(lines.iter().any(|l| l.contains("union")));
    }

    #[test]
    fn morsel_aggregation() {
        let mut p = sample();
        assert_eq!(p.total_morsels(), 0);
        assert_eq!(p.morsels_by_worker(), vec![0, 0, 0, 0]);
        p.pipelines = vec![
            PipelineProfile {
                step: 0,
                nodes: vec![0, 1],
                n_morsels: 3,
                morsel_rows: 1024,
                source_rows: 2500,
                queue_wait_us: 10,
                morsels_by_worker: vec![2, 1, 0, 0],
                morsels_shared: 2,
                groupagg_fused: false,
                typed_cache_hits: 7,
            },
            PipelineProfile {
                step: 2,
                nodes: vec![2],
                n_morsels: 2,
                morsel_rows: 1024,
                source_rows: 1100,
                queue_wait_us: 5,
                morsels_by_worker: vec![0, 1, 1, 0],
                morsels_shared: 0,
                groupagg_fused: true,
                typed_cache_hits: 4,
            },
        ];
        assert_eq!(p.total_morsels(), 5);
        assert_eq!(p.morsels_by_worker(), vec![2, 2, 1, 0]);
        assert_eq!(p.morsel_sizes(), vec![1024, 1024]);
        assert_eq!(p.total_shared_morsels(), 2);
        assert_eq!(p.fused_groupagg_pipelines(), 1);
        assert_eq!(p.total_typed_cache_hits(), 11);
    }

    #[test]
    fn dop_timeline_regrant_detection() {
        let mut p = sample();
        // Initial grant only: no re-grant.
        assert!(!p.dop_was_regranted());
        // Claw-back below the initial grant: still no re-grant.
        p.dop_timeline.push(DopEvent { at_us: 10, dop: 1, phase: DopPhase::Regrant });
        assert!(!p.dop_was_regranted());
        // A raise above the admit-time grant is a re-grant.
        p.dop_timeline.push(DopEvent { at_us: 20, dop: 4, phase: DopPhase::Regrant });
        assert!(p.dop_was_regranted());
        // A later grant of "unlimited" also counts.
        let mut q = sample();
        q.dop_timeline.push(DopEvent { at_us: 5, dop: 0, phase: DopPhase::Regrant });
        assert!(q.dop_was_regranted());
        // Queries admitted unlimited have nothing to re-grant.
        let mut r = sample();
        r.dop_timeline = vec![
            DopEvent { at_us: 0, dop: 0, phase: DopPhase::Admit },
            DopEvent { at_us: 9, dop: 8, phase: DopPhase::Regrant },
        ];
        assert!(!r.dop_was_regranted());
        // A reservation's Submit event restates the standing grant; on its
        // own it is not a re-grant even when the submitted dop is higher
        // (that raise was already visible as a Regrant or never happened).
        let mut s = sample();
        s.dop_timeline = vec![
            DopEvent { at_us: 0, dop: 2, phase: DopPhase::Reserve },
            DopEvent { at_us: 7, dop: 4, phase: DopPhase::Submit },
        ];
        assert!(!s.dop_was_regranted());
    }

    #[test]
    fn degenerate_profiles() {
        let p = QueryProfile {
            wall_time: Duration::ZERO,
            n_workers: 0,
            concurrent_peers: 0,
            operators: vec![],
            pipelines: vec![],
            dop_timeline: vec![],
        };
        assert_eq!(p.total_cpu_us(), 0);
        assert_eq!(p.workers_used(), 0);
        assert_eq!(p.multi_core_utilization(), 0.0);
        assert!(p.most_expensive().is_none());
        assert!(p.parallelism_usage() <= 1.0);
        assert_eq!(p.total_queue_wait_us(), 0);
        assert_eq!(p.queue_wait_share(), 0.0);
    }
}
