//! Dataflow plan representation.
//!
//! A [`Plan`] is a DAG of [`PlanNode`]s, each holding an [`OperatorSpec`] and
//! the ids of its input nodes. This mirrors the property the paper requires
//! of a host system: "its plan representation allows identification of
//! individual expensive operators" (§2). The adaptive parallelizer (crate
//! `apq-core`) morphs plans by cloning nodes over partitions and rewiring
//! edges; everything it needs — consumer lookup, node insertion/removal,
//! per-operator metadata such as which inputs are range-partitionable — lives
//! here.

use std::collections::HashMap;
use std::fmt::Write as _;

use apq_columnar::partition::RowRange;
use apq_columnar::ScalarValue;
use apq_operators::{AggFunc, BinaryOp, Predicate};

use crate::error::{EngineError, Result};

/// Identifier of a plan node (index into the plan's node table).
pub type NodeId = usize;

/// Which side of a join result an operator projects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// The probe (outer, partitioned) side.
    Outer,
    /// The build (inner, shared hash table) side.
    Inner,
}

/// How the results of cloned instances of an operator are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinerKind {
    /// Pack with an exchange-union operator (oids, columns, join pairs).
    ExchangeUnion,
    /// Merge partial scalar aggregates and finalize.
    FinalizeAgg,
    /// Merge partial grouped aggregates.
    MergeGrouped,
    /// The operator cannot be cloned over partitions.
    NotParallelizable,
}

/// The physical operator a plan node executes.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorSpec {
    /// Zero-copy range slice of a base-table column (leaf).
    ScanColumn {
        /// Table name in the catalog.
        table: String,
        /// Column name within the table.
        column: String,
        /// Row range of the slice (oid range).
        range: RowRange,
    },
    /// Positional slice of an intermediate (column, oid list or join result).
    ///
    /// Introduced by plan mutation when the partitionable input of an
    /// expensive operator is itself an intermediate. The slice is clamped to
    /// the actual intermediate length at runtime (boundary adjustment of
    /// paper Fig. 9).
    SlicePart {
        /// First row of the slice.
        start: usize,
        /// Length of the slice.
        len: usize,
    },
    /// Predicate selection producing a candidate oid list. Optional second
    /// input: a previous candidate list to refine.
    Select {
        /// The predicate to evaluate.
        predicate: Predicate,
    },
    /// Predicate evaluation producing a boolean column (one flag per row).
    PredMask {
        /// The predicate to evaluate.
        predicate: Predicate,
    },
    /// `out[i] = cond[i] ? then[i] : otherwise` (MonetDB `batcalc.ifthenelse`).
    IfThenElse {
        /// Value used where the condition is false.
        otherwise: ScalarValue,
    },
    /// Tuple reconstruction: fetch values of input-1 at the oids of input-0.
    Fetch,
    /// Tuple reconstruction that clamps out-of-slice oids instead of failing.
    FetchClamped,
    /// Builds a join hash table over the input key column.
    HashBuild,
    /// Probes a hash table (input 1) with an outer key column (input 0).
    HashProbe,
    /// Semi-join: outer oids that have at least one match in the hash table.
    SemiJoin,
    /// Anti-join: outer oids that have no match in the hash table.
    AntiJoin,
    /// Projects one side of a join result as an oid list.
    ProjectJoinSide {
        /// Which side to project.
        side: JoinSide,
    },
    /// Re-interprets an integer column as an oid list (MonetDB's use of a
    /// BAT whose tail holds oids, e.g. a foreign-key column addressing a
    /// dimension table whose primary key equals the row id).
    OidsFromColumn,
    /// Element-wise arithmetic. With `left_scalar` set the expression is
    /// `scalar <op> input0`; with `right_scalar` set it is `input0 <op>
    /// scalar`; with neither it is `input0 <op> input1`.
    Calc {
        /// The arithmetic operation.
        op: BinaryOp,
        /// Optional scalar left operand.
        left_scalar: Option<ScalarValue>,
        /// Optional scalar right operand.
        right_scalar: Option<ScalarValue>,
    },
    /// Scalar aggregate over a column, producing a mergeable partial state.
    ScalarAgg {
        /// The aggregate function.
        func: AggFunc,
    },
    /// Merges partial scalar aggregates (any number of inputs) and finalizes.
    FinalizeAgg {
        /// The aggregate function (must match the partials).
        func: AggFunc,
    },
    /// Single-attribute grouped aggregate: input 0 = keys, input 1 = values.
    GroupAgg {
        /// The aggregate function.
        func: AggFunc,
    },
    /// Merges partial grouped aggregates (any number of inputs).
    MergeGrouped,
    /// Exchange union: packs same-kind inputs in argument order.
    ExchangeUnion,
    /// Arithmetic between two scalar inputs (final result expressions).
    CalcScalars {
        /// The arithmetic operation.
        op: BinaryOp,
    },
}

impl OperatorSpec {
    /// Operator family name, used for plan statistics (paper Table 5 counts
    /// select and join operators) and for the tomograph-style traces.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorSpec::ScanColumn { .. } => "scan",
            OperatorSpec::SlicePart { .. } => "slice",
            OperatorSpec::Select { .. } => "select",
            OperatorSpec::PredMask { .. } => "predmask",
            OperatorSpec::IfThenElse { .. } => "ifthenelse",
            OperatorSpec::Fetch | OperatorSpec::FetchClamped => "fetch",
            OperatorSpec::HashBuild => "hashbuild",
            OperatorSpec::HashProbe => "join",
            OperatorSpec::SemiJoin => "semijoin",
            OperatorSpec::AntiJoin => "antijoin",
            OperatorSpec::ProjectJoinSide { .. } => "projectside",
            OperatorSpec::OidsFromColumn => "asoids",
            OperatorSpec::Calc { .. } => "calc",
            OperatorSpec::ScalarAgg { .. } => "aggregate",
            OperatorSpec::FinalizeAgg { .. } => "finalizeagg",
            OperatorSpec::GroupAgg { .. } => "groupby",
            OperatorSpec::MergeGrouped => "mergegroup",
            OperatorSpec::ExchangeUnion => "union",
            OperatorSpec::CalcScalars { .. } => "calcscalar",
        }
    }

    /// Valid input arity `(min, max)`.
    pub fn arity(&self) -> (usize, usize) {
        match self {
            OperatorSpec::ScanColumn { .. } => (0, 0),
            OperatorSpec::SlicePart { .. }
            | OperatorSpec::PredMask { .. }
            | OperatorSpec::HashBuild
            | OperatorSpec::ProjectJoinSide { .. }
            | OperatorSpec::OidsFromColumn
            | OperatorSpec::ScalarAgg { .. } => (1, 1),
            OperatorSpec::Select { .. } | OperatorSpec::Calc { .. } => (1, 2),
            OperatorSpec::IfThenElse { .. }
            | OperatorSpec::Fetch
            | OperatorSpec::FetchClamped
            | OperatorSpec::HashProbe
            | OperatorSpec::SemiJoin
            | OperatorSpec::AntiJoin
            | OperatorSpec::GroupAgg { .. }
            | OperatorSpec::CalcScalars { .. } => (2, 2),
            OperatorSpec::FinalizeAgg { .. }
            | OperatorSpec::MergeGrouped
            | OperatorSpec::ExchangeUnion => (1, usize::MAX),
        }
    }

    /// Which of the node's inputs are *range partitionable together*
    /// (aligned): when the operator is cloned over a partition, every aligned
    /// input is sliced to the same row range while the others (hash tables,
    /// full columns being fetched into, candidate lists) are shared.
    pub fn aligned_inputs(&self, n_inputs: usize) -> Vec<bool> {
        let pattern: &[bool] = match self {
            OperatorSpec::Select { .. } => &[true, false],
            OperatorSpec::PredMask { .. }
            | OperatorSpec::HashBuild
            | OperatorSpec::ProjectJoinSide { .. }
            | OperatorSpec::OidsFromColumn
            | OperatorSpec::ScalarAgg { .. }
            | OperatorSpec::SlicePart { .. } => &[true],
            OperatorSpec::IfThenElse { .. }
            | OperatorSpec::Calc { .. }
            | OperatorSpec::GroupAgg { .. } => &[true, true],
            OperatorSpec::Fetch
            | OperatorSpec::FetchClamped
            | OperatorSpec::HashProbe
            | OperatorSpec::SemiJoin
            | OperatorSpec::AntiJoin => &[true, false],
            OperatorSpec::ExchangeUnion => return vec![true; n_inputs],
            OperatorSpec::ScanColumn { .. }
            | OperatorSpec::FinalizeAgg { .. }
            | OperatorSpec::MergeGrouped
            | OperatorSpec::CalcScalars { .. } => return vec![false; n_inputs],
        };
        (0..n_inputs).map(|i| pattern.get(i).copied().unwrap_or(false)).collect()
    }

    /// How clones of this operator are recombined; also encodes whether the
    /// operator is a candidate for parallelization at all.
    pub fn combiner(&self) -> CombinerKind {
        match self {
            OperatorSpec::Select { .. }
            | OperatorSpec::PredMask { .. }
            | OperatorSpec::IfThenElse { .. }
            | OperatorSpec::Fetch
            | OperatorSpec::FetchClamped
            | OperatorSpec::HashProbe
            | OperatorSpec::SemiJoin
            | OperatorSpec::AntiJoin
            | OperatorSpec::ProjectJoinSide { .. }
            | OperatorSpec::OidsFromColumn
            | OperatorSpec::Calc { .. } => CombinerKind::ExchangeUnion,
            OperatorSpec::ScalarAgg { .. } => CombinerKind::FinalizeAgg,
            OperatorSpec::GroupAgg { .. } => CombinerKind::MergeGrouped,
            OperatorSpec::ScanColumn { .. }
            | OperatorSpec::SlicePart { .. }
            | OperatorSpec::HashBuild
            | OperatorSpec::FinalizeAgg { .. }
            | OperatorSpec::MergeGrouped
            | OperatorSpec::ExchangeUnion
            | OperatorSpec::CalcScalars { .. } => CombinerKind::NotParallelizable,
        }
    }

    /// True when the operator can be cloned over range partitions by the
    /// basic or advanced mutation (the exchange-union is handled separately
    /// by the medium mutation).
    pub fn is_parallelizable(&self) -> bool {
        self.combiner() != CombinerKind::NotParallelizable
    }

    /// Compact parameter description for plan pretty-printing.
    pub fn describe(&self) -> String {
        match self {
            OperatorSpec::ScanColumn { table, column, range } => {
                format!("{table}.{column}[{}, {})", range.start, range.end)
            }
            OperatorSpec::SlicePart { start, len } => format!("[{start}, {})", start + len),
            OperatorSpec::Select { predicate } | OperatorSpec::PredMask { predicate } => {
                predicate.describe()
            }
            OperatorSpec::IfThenElse { otherwise } => format!("else {otherwise}"),
            OperatorSpec::ProjectJoinSide { side } => format!("{side:?}"),
            OperatorSpec::Calc { op, left_scalar, right_scalar } => {
                match (left_scalar, right_scalar) {
                    (Some(s), None) => format!("{s} {} col", op.symbol()),
                    (None, Some(s)) => format!("col {} {s}", op.symbol()),
                    _ => format!("col {} col", op.symbol()),
                }
            }
            OperatorSpec::ScalarAgg { func }
            | OperatorSpec::FinalizeAgg { func }
            | OperatorSpec::GroupAgg { func } => func.name().to_string(),
            OperatorSpec::CalcScalars { op } => op.symbol().to_string(),
            _ => String::new(),
        }
    }
}

/// One node of the plan DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// The operator this node executes.
    pub spec: OperatorSpec,
    /// Ids of the producer nodes whose outputs feed this node, in order.
    pub inputs: Vec<NodeId>,
}

/// A dataflow plan: a DAG of operator nodes with a single result node.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    nodes: Vec<Option<PlanNode>>,
    root: Option<NodeId>,
}

impl Plan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Adds a node and returns its id.
    pub fn add(&mut self, spec: OperatorSpec, inputs: Vec<NodeId>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Some(PlanNode { spec, inputs }));
        id
    }

    /// Marks `id` as the plan's result node.
    pub fn set_root(&mut self, id: NodeId) {
        self.root = Some(id);
    }

    /// The plan's result node.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Total slots in the node table (including removed nodes).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live nodes — the paper's "number of MAL instructions".
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Immutable access to a live node.
    pub fn node(&self, id: NodeId) -> Result<&PlanNode> {
        self.nodes
            .get(id)
            .and_then(Option::as_ref)
            .ok_or_else(|| EngineError::InvalidPlan(format!("node {id} does not exist")))
    }

    /// Mutable access to a live node.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut PlanNode> {
        self.nodes
            .get_mut(id)
            .and_then(Option::as_mut)
            .ok_or_else(|| EngineError::InvalidPlan(format!("node {id} does not exist")))
    }

    /// True when the node id refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.get(id).is_some_and(Option::is_some)
    }

    /// Removes a node (its consumers must have been rewired first).
    pub fn remove(&mut self, id: NodeId) -> Result<()> {
        if !self.contains(id) {
            return Err(EngineError::InvalidPlan(format!("cannot remove missing node {id}")));
        }
        self.nodes[id] = None;
        Ok(())
    }

    /// Ids of all live nodes, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().enumerate().filter_map(|(i, n)| n.as_ref().map(|_| i)).collect()
    }

    /// Ids of the live nodes that consume `id`'s output, ascending.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().and_then(|node| node.inputs.contains(&id).then_some(i)))
            .collect()
    }

    /// Replaces every occurrence of `old` in `node`'s input list with `new`.
    pub fn replace_input(&mut self, node: NodeId, old: NodeId, new: NodeId) -> Result<()> {
        let n = self.node_mut(node)?;
        for input in n.inputs.iter_mut() {
            if *input == old {
                *input = new;
            }
        }
        Ok(())
    }

    /// Replaces the single occurrence of `old` in `node`'s inputs with the
    /// sequence `new` (used when a union input is replaced by two clones).
    pub fn splice_input(&mut self, node: NodeId, old: NodeId, new: &[NodeId]) -> Result<()> {
        let n = self.node_mut(node)?;
        let pos = n.inputs.iter().position(|&i| i == old).ok_or_else(|| {
            EngineError::InvalidPlan(format!("node {node} does not consume node {old}"))
        })?;
        n.inputs.splice(pos..=pos, new.iter().copied());
        Ok(())
    }

    /// Canonical structural signature of the plan: every live node's full
    /// operator spec and input wiring plus the root marker, in id order.
    /// Plans that build the same DAG the same way produce equal signatures;
    /// the encoding includes every operator parameter (predicate constants,
    /// scan ranges), so "same shape, different constants" never collides.
    /// This is the cache key of the service layer's shared plan and result
    /// caches ([`crate::service`]).
    pub fn signature(&self) -> String {
        let mut out = String::new();
        for id in self.node_ids() {
            let node = self.node(id).expect("live node");
            let _ = write!(out, "{id}:{:?}<-{:?};", node.spec, node.inputs);
        }
        let _ = write!(out, "root={:?}", self.root);
        out
    }

    /// Names of the tables the plan reads ([`OperatorSpec::ScanColumn`]
    /// sources), deduplicated and sorted — the invalidation key set of the
    /// service layer's result cache ([`crate::service`]).
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut tables: Vec<String> = self
            .node_ids()
            .into_iter()
            .filter_map(|id| match &self.node(id).expect("live node").spec {
                OperatorSpec::ScanColumn { table, .. } => Some(table.clone()),
                _ => None,
            })
            .collect();
        tables.sort();
        tables.dedup();
        tables
    }

    /// Canonical signature of the subtree rooted at `node`: a node-id-free
    /// postorder encoding (`spec(input₁,input₂,…)`) of every operator the
    /// node transitively consumes. Two plans that build the same subtree —
    /// even with different node numbering — produce equal signatures, which
    /// is what makes it the partial-aggregate reuse key of
    /// [`crate::sharing`]: a repeated query shape hits the cache regardless
    /// of how its DAG was assembled. Like [`Plan::signature`], every
    /// operator parameter is encoded, so "same shape, different constants"
    /// never collides.
    pub fn subtree_signature(&self, node: NodeId) -> Result<String> {
        let mut memo: HashMap<NodeId, String> = HashMap::new();
        self.subtree_signature_memo(node, &mut memo)
    }

    fn subtree_signature_memo(
        &self,
        node: NodeId,
        memo: &mut HashMap<NodeId, String>,
    ) -> Result<String> {
        if let Some(sig) = memo.get(&node) {
            return Ok(sig.clone());
        }
        let n = self.node(node)?;
        let mut sig = format!("{:?}(", n.spec);
        for (i, &input) in n.inputs.iter().enumerate() {
            if i > 0 {
                sig.push(',');
            }
            let inner = self.subtree_signature_memo(input, memo)?;
            sig.push_str(&inner);
        }
        sig.push(')');
        memo.insert(node, sig.clone());
        Ok(sig)
    }

    /// Names of the tables the subtree rooted at `node` reads, deduplicated
    /// and sorted — the per-table invalidation key set of a cached partial
    /// aggregate ([`crate::sharing`]).
    pub fn subtree_tables(&self, node: NodeId) -> Result<Vec<String>> {
        let mut stack = vec![node];
        let mut seen: Vec<NodeId> = Vec::new();
        let mut tables: Vec<String> = Vec::new();
        while let Some(id) = stack.pop() {
            if seen.contains(&id) {
                continue;
            }
            seen.push(id);
            let n = self.node(id)?;
            if let OperatorSpec::ScanColumn { table, .. } = &n.spec {
                tables.push(table.clone());
            }
            stack.extend_from_slice(&n.inputs);
        }
        tables.sort();
        tables.dedup();
        Ok(tables)
    }

    /// Counts live operators per family name (e.g. `select`, `join`, `union`).
    pub fn count_by_name(&self) -> HashMap<&'static str, usize> {
        let mut out = HashMap::new();
        for id in self.node_ids() {
            *out.entry(self.node(id).expect("live").spec.name()).or_insert(0) += 1;
        }
        out
    }

    /// Number of live operators of one family.
    pub fn count_of(&self, name: &str) -> usize {
        self.count_by_name().get(name).copied().unwrap_or(0)
    }

    /// Topological order of the live nodes (producers before consumers).
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let ids = self.node_ids();
        let mut in_deg: HashMap<NodeId, usize> = ids.iter().map(|&i| (i, 0)).collect();
        for &id in &ids {
            for &input in &self.node(id)?.inputs {
                if !self.contains(input) {
                    return Err(EngineError::InvalidPlan(format!(
                        "node {id} references missing node {input}"
                    )));
                }
                *in_deg.get_mut(&id).expect("present") += 1;
            }
        }
        let mut ready: Vec<NodeId> = ids.iter().copied().filter(|i| in_deg[i] == 0).collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(ids.len());
        let mut queue = std::collections::VecDeque::from(ready);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for consumer in self.consumers(id) {
                let d = in_deg.get_mut(&consumer).expect("present");
                // A consumer may list the same producer several times.
                let times = self.node(consumer)?.inputs.iter().filter(|&&i| i == id).count();
                *d -= times;
                if *d == 0 {
                    queue.push_back(consumer);
                }
            }
        }
        if order.len() != ids.len() {
            return Err(EngineError::InvalidPlan("plan contains a cycle".to_string()));
        }
        Ok(order)
    }

    /// Structural validation: root set and live, inputs live, arities valid,
    /// DAG acyclic.
    pub fn validate(&self) -> Result<()> {
        let root =
            self.root.ok_or_else(|| EngineError::InvalidPlan("plan has no root".to_string()))?;
        if !self.contains(root) {
            return Err(EngineError::InvalidPlan(format!("root {root} is not a live node")));
        }
        for id in self.node_ids() {
            let node = self.node(id)?;
            let (min, max) = node.spec.arity();
            if node.inputs.len() < min || node.inputs.len() > max {
                return Err(EngineError::InvalidPlan(format!(
                    "node {id} ({}) has {} inputs, expected between {min} and {}",
                    node.spec.name(),
                    node.inputs.len(),
                    if max == usize::MAX { "unbounded".to_string() } else { max.to_string() }
                )));
            }
            for &input in &node.inputs {
                if !self.contains(input) {
                    return Err(EngineError::InvalidPlan(format!(
                        "node {id} references missing node {input}"
                    )));
                }
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Graphviz DOT rendering of the plan DAG.
    ///
    /// The paper's companion tool Stethoscope visualizes MAL plans as data
    /// flow graphs (its Fig. 7); this produces the equivalent picture for the
    /// plans built and mutated here (`dot -Tsvg plan.dot -o plan.svg`).
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=BT;");
        let _ = writeln!(out, "  node [shape=box, fontsize=10];");
        for id in self.node_ids() {
            let node = self.node(id).expect("live");
            let fill = match node.spec.name() {
                "select" | "predmask" => "#cde7cd",
                "join" | "semijoin" | "antijoin" | "hashbuild" => "#cdd5e7",
                "union" => "#e7d9cd",
                "aggregate" | "groupby" | "finalizeagg" | "mergegroup" => "#e7e3cd",
                _ => "#f2f2f2",
            };
            let peripheries = if self.root == Some(id) { 2 } else { 1 };
            let _ = writeln!(
                out,
                "  n{id} [label=\"[{id}] {}\\n{}\", style=filled, fillcolor=\"{fill}\", peripheries={peripheries}];",
                node.spec.name(),
                node.spec.describe().replace('"', "'"),
            );
        }
        for id in self.node_ids() {
            for &input in &self.node(id).expect("live").inputs {
                let _ = writeln!(out, "  n{input} -> n{id};");
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Human-readable plan dump (one line per node, topological order).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => self.node_ids(),
        };
        for id in order {
            let node = self.node(id).expect("live");
            let marker = if Some(id) == self.root { "*" } else { " " };
            let _ = writeln!(
                out,
                "{marker}[{id:>3}] {:<12} {:<28} <- {:?}",
                node.spec.name(),
                node.spec.describe(),
                node.inputs
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_operators::CmpOp;

    fn scan(table: &str, column: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: table.into(),
            column: column.into(),
            range: RowRange::new(0, rows),
        }
    }

    fn tiny_plan() -> Plan {
        // scan -> select -> (fetch from another scan) -> sum -> finalize
        let mut p = Plan::new();
        let s0 = p.add(scan("t", "a", 100), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 10i64) }, vec![s0]);
        let s1 = p.add(scan("t", "b", 100), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, s1]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    #[test]
    fn build_and_validate() {
        let p = tiny_plan();
        assert_eq!(p.node_count(), 6);
        p.validate().unwrap();
        assert_eq!(p.root(), Some(5));
        assert!(p.contains(0));
        assert!(!p.contains(99));
    }

    #[test]
    fn consumers_and_rewiring() {
        let mut p = tiny_plan();
        assert_eq!(p.consumers(1), vec![3]); // select feeds fetch
        assert_eq!(p.consumers(5), Vec::<NodeId>::new());
        // Replace the fetch's oid input with a new select.
        let s0 = 0;
        let sel2 =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Ge, 5i64) }, vec![s0]);
        p.replace_input(3, 1, sel2).unwrap();
        assert_eq!(p.consumers(sel2), vec![3]);
        assert!(p.consumers(1).is_empty());
        p.remove(1).unwrap();
        p.validate().unwrap();
        assert!(p.remove(1).is_err());
    }

    #[test]
    fn splice_input_expands_unions() {
        let mut p = Plan::new();
        let a = p.add(scan("t", "a", 10), vec![]);
        let s1 =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        let s2 =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        let u = p.add(OperatorSpec::ExchangeUnion, vec![s1, s2]);
        p.set_root(u);
        let s3 =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        let s4 =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        p.splice_input(u, s2, &[s3, s4]).unwrap();
        assert_eq!(p.node(u).unwrap().inputs, vec![s1, s3, s4]);
        assert!(p.splice_input(u, 999, &[s1]).is_err());
    }

    #[test]
    fn topo_order_and_cycles() {
        let p = tiny_plan();
        let order = p.topo_order().unwrap();
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for id in p.node_ids() {
            for &input in &p.node(id).unwrap().inputs {
                assert!(pos[&input] < pos[&id], "{input} must precede {id}");
            }
        }
        // Introduce a cycle.
        let mut bad = p.clone();
        bad.node_mut(0).unwrap().inputs.push(5);
        assert!(bad.topo_order().is_err());
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_arity_and_missing_root() {
        let mut p = Plan::new();
        let a = p.add(scan("t", "a", 10), vec![]);
        // No root set.
        assert!(p.validate().is_err());
        // Fetch with a single input violates arity.
        let f = p.add(OperatorSpec::Fetch, vec![a]);
        p.set_root(f);
        assert!(p.validate().is_err());
    }

    #[test]
    fn operator_metadata() {
        let sel = OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 1i64) };
        assert_eq!(sel.name(), "select");
        assert!(sel.is_parallelizable());
        assert_eq!(sel.combiner(), CombinerKind::ExchangeUnion);
        assert_eq!(sel.aligned_inputs(2), vec![true, false]);

        let agg = OperatorSpec::ScalarAgg { func: AggFunc::Sum };
        assert_eq!(agg.combiner(), CombinerKind::FinalizeAgg);
        let group = OperatorSpec::GroupAgg { func: AggFunc::Sum };
        assert_eq!(group.combiner(), CombinerKind::MergeGrouped);
        assert_eq!(group.aligned_inputs(2), vec![true, true]);

        let union = OperatorSpec::ExchangeUnion;
        assert!(!union.is_parallelizable());
        assert_eq!(union.aligned_inputs(4), vec![true; 4]);
        assert_eq!(union.arity(), (1, usize::MAX));

        let scanop = scan("t", "a", 5);
        assert!(!scanop.is_parallelizable());
        assert_eq!(scanop.arity(), (0, 0));
        assert!(scanop.describe().contains("t.a"));

        let probe = OperatorSpec::HashProbe;
        assert_eq!(probe.name(), "join");
        assert_eq!(probe.aligned_inputs(2), vec![true, false]);
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let p = tiny_plan();
        let dot = p.to_dot("q");
        assert!(dot.starts_with("digraph \"q\""));
        assert!(dot.ends_with("}\n"));
        // One node statement per live node, one edge per input reference.
        let nodes = dot.lines().filter(|l| l.contains("label=")).count();
        assert_eq!(nodes, p.node_count());
        let edges = dot.lines().filter(|l| l.contains(" -> ")).count();
        let inputs: usize = p.node_ids().iter().map(|&id| p.node(id).unwrap().inputs.len()).sum();
        assert_eq!(edges, inputs);
        // The root is highlighted with a double border.
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("select"));
    }

    #[test]
    fn counting_and_pretty() {
        let p = tiny_plan();
        let counts = p.count_by_name();
        assert_eq!(counts.get("scan"), Some(&2));
        assert_eq!(counts.get("select"), Some(&1));
        assert_eq!(p.count_of("fetch"), 1);
        assert_eq!(p.count_of("join"), 0);
        let dump = p.pretty();
        assert!(dump.contains("select"));
        assert!(dump.contains('*')); // root marker
        assert!(dump.lines().count() >= 6);
    }
}
