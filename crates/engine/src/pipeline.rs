//! Morsel-driven pipeline execution (Leis et al., "Morsel-Driven
//! Parallelism", adapted to this engine's operator-at-a-time plan IR).
//!
//! The default execution model materializes every operator's whole output
//! before any consumer starts ([`ExecutionMode::OperatorAtATime`]). That
//! leaves the work-stealing scheduler's locality advantage mostly
//! unexercised: a chunk produced on one core is consumed exactly once, by
//! one follow-up task. Morsel-driven execution
//! ([`ExecutionMode::MorselDriven`]) instead *fuses* compatible operator
//! chains into pipelines, splits each pipeline's input into fixed-size
//! **morsels** (configurable via [`crate::EngineConfig::morsel_rows`],
//! default [`DEFAULT_MORSEL_ROWS`] rows) and dispatches one scheduler task
//! per morsel. Workers pull morsels from their own deques, each morsel flows
//! through *all* fused stages while its data is cache-hot, and the per-stage
//! whole-chunk materialization disappears inside the pipeline.
//!
//! ```text
//! operator-at-a-time                 morsel-driven
//! ==================                 =============
//!
//!  scan ──► [whole chunk]            pipeline = scan→select→fetch→agg
//!            select ──► [chunk]        morsel 0 ─► scan₀ sel₀ fetch₀ agg₀ ─┐
//!                    fetch ─► [chunk]  morsel 1 ─► scan₁ sel₁ fetch₁ agg₁ ─┼─► assemble
//!                          agg ─► out  morsel 2 ─► scan₂ sel₂ fetch₂ agg₂ ─┘
//!  (one task per operator,           (one task per MORSEL; stages fused,
//!   whole chunks between them)        partial outputs packed in morsel order)
//! ```
//!
//! # Which chains fuse
//!
//! A pipeline is a maximal linear chain of *streamable* stages: operators
//! that process their first (range-aligned) input row-wise while every other
//! input is either shared whole — hash tables, full columns being fetched
//! into — or, for the **two-range-aligned-input** stages (`Calc` col⊗col,
//! `IfThenElse`, `GroupAgg` keys⊗values), sliced on the *same morsel grid*
//! as the stream (see [`crate::plan::OperatorSpec::aligned_inputs`]). Select,
//! fetch, hash probe / semi / anti join, calc (scalar *and* column⊗column),
//! if-then-else, predicate masks, join-side projections and partial
//! aggregates (scalar *and* grouped) all qualify; pipeline breakers (hash
//! build, exchange union, finalize/merge) run operator-at-a-time between
//! pipelines. Aggregates only ever *terminate* a chain: each morsel yields a
//! partial (`AggState` / `GroupedAgg`) that the driver merges in morsel
//! order, so nothing streams past them (`GroupAgg` is enforced explicitly —
//! see `is_terminal_stage`). Every intermediate stage must have exactly one
//! consumer (the next stage); only the terminal stage's output is
//! materialized and published to the rest of the plan.
//!
//! Two ordering constraints apply inside a chain, both triggered by a stage
//! that has *created a new stream* (a selection or join compacts its input,
//! so a morsel yields only morsel-local ranks, and morsel lengths become
//! data dependent):
//!
//! 1. no later stage that *emits positions* of that stream (another
//!    selection or join) may fuse — its output bases would be morsel-local;
//! 2. no later stage with a second range-aligned input may fuse — the
//!    source's morsel grid no longer describes the stream, so the
//!    grid-aligned cut of the shared input would zip against the wrong rows.
//!
//! Either stage instead starts its own pipeline over the globally assembled
//! chunk (see `creates_stream` / `emits_positions` /
//! `has_aligned_second_input` below). Fusing a two-aligned-input stage also
//! requires the shared input's whole row count to equal the pipeline
//! source's — the executor checks this once per morsel and reports the same
//! `LengthMismatch` operator-at-a-time execution would.
//!
//! # Result equivalence
//!
//! Morsel mode produces **byte-identical** results to operator-at-a-time
//! under every scheduler policy. Three properties make this hold:
//!
//! 1. [`apq_columnar::Column::slice`] preserves absolute base oids, so a
//!    selection over morsel *k* of a column emits exactly the oids the
//!    whole-column selection would emit for those rows;
//! 2. positional slices of candidate/join streams carry their
//!    `stream_base` offset ([`crate::chunk::Chunk::Oids`], the PR-1
//!    alignment invariant), so fetches inside a pipeline over a stream
//!    partition label their outputs with the correct stream position;
//! 3. partial outputs are assembled strictly in morsel order with the same
//!    packing/merging the exchange-union operator uses, which is exactly the
//!    recombination the adaptive mutations already rely on.
//!
//! The assembly of partial scalar aggregates merges [`apq_operators::AggState`]s
//! in morsel order — the identical guarantee the adaptive optimizer's
//! `FinalizeAgg` combiner provides for mutation-split plans.

use crate::error::Result;
use crate::plan::{NodeId, OperatorSpec, Plan};

/// Default morsel size, in rows (the ballpark of Leis et al.'s ~100k-tuple
/// morsels, rounded to a power of two).
pub const DEFAULT_MORSEL_ROWS: usize = 64 * 1024;

/// How the engine turns a validated plan into scheduler tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One task per plan operator; every intermediate result materializes
    /// whole before its consumers run (the seed engine's model, and the
    /// model the paper's adaptive optimizer was measured on).
    #[default]
    OperatorAtATime,
    /// Fused operator pipelines driven by fixed-size morsels: one task per
    /// morsel, partial outputs assembled in morsel order. Byte-identical
    /// results, different dispatch granularity.
    ///
    /// ```
    /// use apq_engine::{Engine, EngineConfig, ExecutionMode, SchedulerPolicy};
    ///
    /// let engine = Engine::new(
    ///     EngineConfig::with_workers(2)
    ///         .with_scheduler(SchedulerPolicy::WorkStealing)
    ///         .with_execution_mode(ExecutionMode::MorselDriven)
    ///         .with_morsel_rows(8_192),
    /// );
    /// assert_eq!(engine.config().execution_mode, ExecutionMode::MorselDriven);
    /// assert_eq!(engine.config().morsel_rows, 8_192);
    /// ```
    MorselDriven,
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionMode::OperatorAtATime => f.write_str("operator-at-a-time"),
            ExecutionMode::MorselDriven => f.write_str("morsel-driven"),
        }
    }
}

/// Where a pipeline's morsels come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PipelineSource {
    /// The pipeline starts at its own `ScanColumn` leaf; morsels are
    /// sub-ranges of the scan (zero-copy column slices).
    Scan {
        /// The scan node (a member of the pipeline).
        node: NodeId,
    },
    /// Morsels are positional slices of an already-materialized chunk
    /// produced by a node *outside* the pipeline.
    Chunk {
        /// The external producer whose published chunk is sliced.
        producer: NodeId,
    },
}

/// A fused chain of operators executed morsel-at-a-time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Pipeline {
    /// Morsel source.
    pub source: PipelineSource,
    /// Fused stage nodes in chain order. `stages[0]` consumes the source;
    /// each later stage consumes its predecessor as first input. Non-empty.
    pub stages: Vec<NodeId>,
    /// True when the pipeline's morsel stream can be served by a shared
    /// [`crate::sharing::ScanGroup`]: the source is a `ScanColumn` leaf, so
    /// every morsel is a deterministic zero-copy window of a base column
    /// that any concurrent query over the same `(table, column)` can reuse
    /// bit-for-bit. Chunk-source pipelines stream a query-private
    /// intermediate and never share.
    pub shareable: bool,
}

impl Pipeline {
    /// The stage whose output is materialized and published to the plan.
    pub fn terminal(&self) -> NodeId {
        *self.stages.last().expect("pipeline has at least one stage")
    }

    /// All member node ids (including a scan source), in execution order.
    pub fn member_nodes(&self) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.stages.len() + 1);
        if let PipelineSource::Scan { node } = self.source {
            nodes.push(node);
        }
        nodes.extend_from_slice(&self.stages);
        nodes
    }
}

/// One schedulable unit of the fused plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Step {
    /// A pipeline breaker (or unfusible node) executed whole, as in
    /// operator-at-a-time mode.
    Single(NodeId),
    /// A fused pipeline executed morsel-at-a-time.
    Fused(Pipeline),
}

/// The fused decomposition of a plan: a DAG of [`Step`]s covering every live
/// node exactly once.
#[derive(Debug, Clone)]
pub(crate) struct PipelinePlan {
    /// The steps, in a valid (topological) execution order.
    pub steps: Vec<Step>,
    /// `step_of[node] == Some(step index)` for every live node. Consumed by
    /// the analysis itself and by diagnostics/tests.
    #[allow(dead_code)]
    pub step_of: Vec<Option<usize>>,
    /// Per step: number of input edges arriving from other steps.
    pub deps: Vec<usize>,
    /// Per step: `(consumer step, edge count)` pairs fed by this step's
    /// published node.
    pub out_edges: Vec<Vec<(usize, usize)>>,
}

/// True when `spec` can run as a fused pipeline stage: it streams its first
/// input row-wise, and every other input is either shared whole (hash
/// tables, fetch targets) or — for the two-range-aligned-input stages
/// (`Calc` col⊗col, `IfThenElse`) — sliced at the same relative window as
/// the stream, which is byte-identical because those operators are pure
/// positional zips of equal-length inputs.
///
/// `Select` only qualifies in its single-column-input form: a
/// candidate-refining select filters through an *unaligned* oid list that
/// cannot be cut on the stream's morsel grid. `SlicePart` is excluded
/// because its `start`/`len` address the whole input, not a morsel of it.
fn is_fusible_stage(spec: &OperatorSpec, n_inputs: usize) -> bool {
    match spec {
        OperatorSpec::Select { .. } => n_inputs == 1,
        OperatorSpec::Calc { .. } => n_inputs <= 2,
        // Grouped aggregation streams its range-aligned keys/values pair
        // like a `Calc` col⊗col zip, but only ever as a pipeline *terminal*
        // (see `is_terminal_stage`): its `Chunk::Grouped` output is a
        // pipeline breaker.
        OperatorSpec::GroupAgg { .. } => n_inputs == 2,
        OperatorSpec::PredMask { .. }
        | OperatorSpec::Fetch
        | OperatorSpec::HashProbe
        | OperatorSpec::SemiJoin
        | OperatorSpec::AntiJoin
        | OperatorSpec::ProjectJoinSide { .. }
        | OperatorSpec::IfThenElse { .. }
        | OperatorSpec::OidsFromColumn
        | OperatorSpec::ScalarAgg { .. } => true,
        _ => false,
    }
}

/// True when the stage *terminates* any pipeline it joins: its output is a
/// pipeline-breaker chunk kind that no later stage could stream, so the
/// chain must stop extending once it is pushed. `GroupAgg` qualifies — each
/// morsel produces a partial [`apq_operators::GroupedAgg`]
/// (`Chunk::Grouped`) and the driver merges the partials in morsel order
/// (the `MergeGrouped` combiner's guarantee), keeping float results
/// byte-exact. `ScalarAgg` is a de-facto terminal for the same reason but
/// needs no explicit rule: nothing fusible consumes its `AggPartial`.
fn is_terminal_stage(spec: &OperatorSpec) -> bool {
    matches!(spec, OperatorSpec::GroupAgg { .. })
}

/// True when the operator *compacts* its input into a brand-new stream
/// (candidate list or join result) whose positions are global ranks: a
/// morsel of the input yields only the morsel-local ranks, so everything
/// downstream that depends on stream *positions* is morsel-relative.
fn creates_stream(spec: &OperatorSpec) -> bool {
    matches!(
        spec,
        OperatorSpec::Select { .. }
            | OperatorSpec::HashProbe
            | OperatorSpec::SemiJoin
            | OperatorSpec::AntiJoin
    )
}

/// True when the operator's output *values* are positions of its input
/// (base oid + local index): selections and the join family. Such a stage
/// may not be fused after a stream-creating stage — its input's base would
/// be a morsel-local 0 instead of the global stream position, and it would
/// silently emit morsel-relative positions (the same bug class as the PR-1
/// `stream_base` fix). Value-transforming stages (fetch, calc, predicate
/// masks, join-side projections, partial aggregates) are safe anywhere:
/// their values are correct per morsel and their base labels reassemble to
/// the operator-at-a-time label (a fresh stream's base 0).
fn emits_positions(spec: &OperatorSpec) -> bool {
    creates_stream(spec)
}

/// True when the operator zips a *second range-aligned input* against its
/// first (`Calc` col⊗col, `IfThenElse`): the executor slices that shared
/// input on the same morsel grid as the pipeline source. This is only sound
/// while the stream still *is* the source's grid — once a stage has
/// compacted the stream ([`creates_stream`]), morsel lengths are data
/// dependent and the grid-aligned cut of the external input would zip
/// against the wrong (or wrongly sized) rows. Such a stage must then start
/// its own pipeline over the globally assembled chunk, where alignment is
/// re-established against the whole intermediate.
fn has_aligned_second_input(spec: &OperatorSpec, n_inputs: usize) -> bool {
    n_inputs > 1 && spec.aligned_inputs(n_inputs).iter().skip(1).any(|&a| a)
}

impl PipelinePlan {
    /// Decomposes a validated plan into pipelines and single-node steps.
    ///
    /// Fusion is conservative: a chain only forms where the plan structure
    /// *guarantees* that intermediate outputs are consumed exactly once, by
    /// the next stage, as its first input. Everything else — multi-consumer
    /// fan-out, pipeline breakers, exotic arities — falls back to single-node
    /// steps that behave exactly like operator-at-a-time execution.
    pub fn analyze(plan: &Plan) -> Result<PipelinePlan> {
        let order = plan.topo_order()?;
        let capacity = plan.capacity();
        let mut step_of: Vec<Option<usize>> = vec![None; capacity];
        let mut steps: Vec<Step> = Vec::new();

        // `chain_next(n, stream_created)` = Some(c) when node n's output is
        // consumed exactly once, by c, as c's first input, and c is a
        // fusible stage. Once the chain has passed a stream-creating stage
        // (`stream_created`), position-emitting stages may not join: their
        // input bases would be morsel-local. They instead start their own
        // pipeline over the globally assembled chunk, which is correct.
        let chain_next = |id: NodeId, stream_created: bool| -> Option<NodeId> {
            let consumers = plan.consumers(id);
            let [consumer] = consumers.as_slice() else { return None };
            let node = plan.node(*consumer).ok()?;
            let occurrences = node.inputs.iter().filter(|&&i| i == id).count();
            if occurrences != 1 || node.inputs.first() != Some(&id) {
                return None;
            }
            if stream_created
                && (emits_positions(&node.spec)
                    || has_aligned_second_input(&node.spec, node.inputs.len()))
            {
                return None;
            }
            is_fusible_stage(&node.spec, node.inputs.len()).then_some(*consumer)
        };

        for &id in &order {
            if step_of[id].is_some() {
                continue;
            }
            let node = plan.node(id)?;

            // A pipeline head is either a single-consumer scan feeding a
            // fusible stage, or a fusible stage whose first input is already
            // materialized by an external step.
            let head = match &node.spec {
                OperatorSpec::ScanColumn { .. } => chain_next(id, false)
                    .map(|first_stage| (PipelineSource::Scan { node: id }, first_stage)),
                spec if is_fusible_stage(spec, node.inputs.len()) => {
                    // Head streams over its producer's published chunk. The
                    // producer is external by construction: it was assigned
                    // to an earlier step (topological order), or forms one.
                    let occurrences = node.inputs.iter().filter(|&&i| i == node.inputs[0]).count();
                    (occurrences == 1 || node.inputs.len() == 1)
                        .then_some((PipelineSource::Chunk { producer: node.inputs[0] }, id))
                }
                _ => None,
            };

            let step = match head {
                Some((source, first_stage)) => {
                    let mut stages = vec![first_stage];
                    let mut last = first_stage;
                    // The head streams over source slices whose bases are
                    // globally correct (column slices keep absolute oids,
                    // stream slices keep `stream_base`), so the head itself
                    // may emit positions; the constraint starts after the
                    // first in-pipeline stream creator.
                    let mut stream_created = creates_stream(&plan.node(first_stage)?.spec);
                    if !is_terminal_stage(&plan.node(first_stage)?.spec) {
                        while let Some(next) = chain_next(last, stream_created) {
                            let spec = &plan.node(next)?.spec;
                            stream_created |= creates_stream(spec);
                            let terminal = is_terminal_stage(spec);
                            stages.push(next);
                            last = next;
                            if terminal {
                                break;
                            }
                        }
                    }
                    // Scan-source pipelines are marked shareable here, at
                    // analysis time: the executor only attaches a pipeline
                    // to a scan group when the analyzer vouched that its
                    // morsels are base-table windows.
                    let shareable = matches!(source, PipelineSource::Scan { .. });
                    Step::Fused(Pipeline { source, stages, shareable })
                }
                None => Step::Single(id),
            };

            let idx = steps.len();
            match &step {
                Step::Single(n) => step_of[*n] = Some(idx),
                Step::Fused(p) => {
                    for n in p.member_nodes() {
                        step_of[n] = Some(idx);
                    }
                }
            }
            steps.push(step);
        }

        // Step-level dependency edges: count every input reference that
        // crosses a step boundary. Only published (terminal/single) nodes
        // can be referenced across steps, by construction.
        let mut deps = vec![0usize; steps.len()];
        let mut out_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); steps.len()];
        for (idx, step) in steps.iter().enumerate() {
            let members = match step {
                Step::Single(n) => vec![*n],
                Step::Fused(p) => p.member_nodes(),
            };
            for member in members {
                for &input in &plan.node(member)?.inputs {
                    let producer_step = step_of[input].expect("live input is assigned");
                    if producer_step != idx {
                        deps[idx] += 1;
                        match out_edges[producer_step].iter_mut().find(|(c, _)| *c == idx) {
                            Some((_, count)) => *count += 1,
                            None => out_edges[producer_step].push((idx, 1)),
                        }
                    }
                }
            }
        }

        Ok(PipelinePlan { steps, step_of, deps, out_edges })
    }

    /// Number of fused pipelines in the decomposition (diagnostics/tests).
    #[allow(dead_code)]
    pub fn n_pipelines(&self) -> usize {
        self.steps.iter().filter(|s| matches!(s, Step::Fused(_))).count()
    }
}

/// Number of morsels needed to cover `rows` at `morsel_rows` rows per
/// morsel. Always at least 1, so empty inputs still execute the pipeline
/// once (empty selections, empty scans and empty aggregates are meaningful
/// outputs).
pub(crate) fn morsel_count(rows: usize, morsel_rows: usize) -> usize {
    let morsel_rows = morsel_rows.max(1);
    rows.div_ceil(morsel_rows).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::ScalarValue;
    use apq_operators::{AggFunc, BinaryOp, CmpOp, Predicate};

    fn scan(col: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: col.into(),
            range: RowRange::new(0, rows),
        }
    }

    /// scan(a) → select → fetch(b) → agg → finalize, with b scanned separately.
    fn filter_sum_plan(rows: usize) -> Plan {
        let mut p = Plan::new();
        let a = p.add(scan("a", rows), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 10i64) }, vec![a]);
        let b = p.add(scan("b", rows), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    #[test]
    fn execution_mode_default_and_display() {
        assert_eq!(ExecutionMode::default(), ExecutionMode::OperatorAtATime);
        assert_eq!(ExecutionMode::OperatorAtATime.to_string(), "operator-at-a-time");
        assert_eq!(ExecutionMode::MorselDriven.to_string(), "morsel-driven");
    }

    #[test]
    fn fuses_scan_select_fetch_agg_chain() {
        let plan = filter_sum_plan(1000);
        let fused = PipelinePlan::analyze(&plan).unwrap();
        // Expected: [scan a, select, fetch, agg] fused; scan b single
        // (feeds the fetch as a shared, unaligned input); finalize single.
        assert_eq!(fused.n_pipelines(), 1);
        let pipeline = fused
            .steps
            .iter()
            .find_map(|s| match s {
                Step::Fused(p) => Some(p),
                Step::Single(_) => None,
            })
            .unwrap();
        assert_eq!(pipeline.source, PipelineSource::Scan { node: 0 });
        assert_eq!(pipeline.stages, vec![1, 3, 4]);
        assert_eq!(pipeline.terminal(), 4);
        assert_eq!(pipeline.member_nodes(), vec![0, 1, 3, 4]);
        assert!(pipeline.shareable, "scan-source pipeline must be shareable");
        // Every live node is assigned to exactly one step.
        for id in plan.node_ids() {
            assert!(fused.step_of[id].is_some(), "node {id} unassigned");
        }
    }

    #[test]
    fn step_dependencies_count_cross_step_edges() {
        let plan = filter_sum_plan(1000);
        let fused = PipelinePlan::analyze(&plan).unwrap();
        let pipe_idx = fused.steps.iter().position(|s| matches!(s, Step::Fused(_))).unwrap();
        let scan_b_idx = fused.step_of[2].unwrap();
        let fin_idx = fused.step_of[5].unwrap();
        assert_ne!(pipe_idx, scan_b_idx);
        // The pipeline waits for scan b (fetch's shared input).
        assert_eq!(fused.deps[pipe_idx], 1);
        assert_eq!(fused.deps[scan_b_idx], 0);
        // Finalize waits for the pipeline's terminal aggregate.
        assert_eq!(fused.deps[fin_idx], 1);
        assert!(fused.out_edges[pipe_idx].contains(&(fin_idx, 1)));
        assert!(fused.out_edges[scan_b_idx].contains(&(pipe_idx, 1)));
    }

    #[test]
    fn multi_consumer_nodes_break_chains() {
        // scan a feeds two selects: no fusion across the fan-out.
        let mut p = Plan::new();
        let a = p.add(scan("a", 100), vec![]);
        let s1 =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        let s2 =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Ge, 5i64) }, vec![a]);
        let u = p.add(OperatorSpec::ExchangeUnion, vec![s1, s2]);
        p.set_root(u);
        let fused = PipelinePlan::analyze(&p).unwrap();
        // The scan is a single step; each select becomes its own chunk-source
        // pipeline over the scan's chunk; the union is a breaker.
        assert_eq!(fused.step_of[a], Some(0));
        assert!(matches!(fused.steps[0], Step::Single(0)));
        let s1_step = &fused.steps[fused.step_of[s1].unwrap()];
        assert!(
            matches!(s1_step, Step::Fused(p) if p.source == PipelineSource::Chunk { producer: a }),
            "select over a fan-out scan should stream the materialized chunk: {s1_step:?}"
        );
        assert!(
            matches!(s1_step, Step::Fused(p) if !p.shareable),
            "chunk-source pipelines must not be shareable: {s1_step:?}"
        );
        assert!(matches!(fused.steps[fused.step_of[u].unwrap()], Step::Single(_)));
    }

    #[test]
    fn candidate_refining_select_is_not_fused() {
        // select with a candidate-list second input must not stream.
        let mut p = Plan::new();
        let a = p.add(scan("a", 100), vec![]);
        let s1 =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 50i64) }, vec![a]);
        let b = p.add(scan("b", 100), vec![]);
        let s2 = p
            .add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Ge, 10i64) }, vec![b, s1]);
        p.set_root(s2);
        let fused = PipelinePlan::analyze(&p).unwrap();
        let s2_step = &fused.steps[fused.step_of[s2].unwrap()];
        assert!(matches!(s2_step, Step::Single(_)), "refining select fused: {s2_step:?}");
    }

    #[test]
    fn slice_part_never_joins_a_pipeline() {
        // SlicePart's start/len address the whole input; fusing it under a
        // morsel slice would re-slice relative coordinates.
        let mut p = Plan::new();
        let a = p.add(scan("a", 100), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 50i64) }, vec![a]);
        let part = p.add(OperatorSpec::SlicePart { start: 10, len: 20 }, vec![sel]);
        p.set_root(part);
        let fused = PipelinePlan::analyze(&p).unwrap();
        let part_step = &fused.steps[fused.step_of[part].unwrap()];
        assert!(matches!(part_step, Step::Single(_)));
        // But a fusible consumer of the SlicePart streams its chunk.
        let mut p2 = Plan::new();
        let a = p2.add(scan("a", 100), vec![]);
        let part = p2.add(OperatorSpec::SlicePart { start: 10, len: 20 }, vec![a]);
        let calc = p2.add(
            OperatorSpec::Calc {
                op: BinaryOp::Add,
                left_scalar: None,
                right_scalar: Some(ScalarValue::I64(1)),
            },
            vec![part],
        );
        p2.set_root(calc);
        let fused2 = PipelinePlan::analyze(&p2).unwrap();
        let calc_step = &fused2.steps[fused2.step_of[calc].unwrap()];
        assert!(
            matches!(calc_step, Step::Fused(pl) if pl.source == PipelineSource::Chunk { producer: part }),
        );
    }

    #[test]
    fn position_emitters_do_not_fuse_after_a_stream_creator() {
        // scan → select → fetch → semijoin: the select creates a new
        // candidate stream per morsel, so the semijoin (which emits stream
        // positions) must not join the chain — it gets its own pipeline
        // over the assembled fetch output.
        let mut p = Plan::new();
        let a = p.add(scan("a", 4_000), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 3_995i64) }, vec![a]);
        let b = p.add(scan("b", 4_000), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let dim = p.add(scan("k", 10), vec![]);
        let hash = p.add(OperatorSpec::HashBuild, vec![dim]);
        let semi = p.add(OperatorSpec::SemiJoin, vec![fetch, hash]);
        p.set_root(semi);
        let fused = PipelinePlan::analyze(&p).unwrap();

        let first = &fused.steps[fused.step_of[a].unwrap()];
        assert!(
            matches!(first, Step::Fused(pl) if pl.stages == vec![sel, fetch]),
            "chain should stop before the semijoin: {first:?}"
        );
        let semi_step = &fused.steps[fused.step_of[semi].unwrap()];
        assert!(
            matches!(semi_step, Step::Fused(pl) if pl.source == PipelineSource::Chunk { producer: fetch }
                && pl.stages == vec![semi]),
            "semijoin should start its own pipeline over the assembled chunk: {semi_step:?}"
        );

        // A probe directly over a base column (no prior stream creator)
        // still fuses, and value-transforming stages may follow it.
        let mut p2 = Plan::new();
        let outer = p2.add(scan("a", 4_000), vec![]);
        let dim = p2.add(scan("k", 10), vec![]);
        let hash = p2.add(OperatorSpec::HashBuild, vec![dim]);
        let join = p2.add(OperatorSpec::HashProbe, vec![outer, hash]);
        let side = p2
            .add(OperatorSpec::ProjectJoinSide { side: crate::plan::JoinSide::Outer }, vec![join]);
        let vals = p2.add(scan("b", 4_000), vec![]);
        let fetched = p2.add(OperatorSpec::Fetch, vec![side, vals]);
        let agg = p2.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetched]);
        let fin = p2.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p2.set_root(fin);
        let fused2 = PipelinePlan::analyze(&p2).unwrap();
        let chain = &fused2.steps[fused2.step_of[join].unwrap()];
        assert!(
            matches!(chain, Step::Fused(pl) if pl.stages == vec![join, side, fetched, agg]),
            "probe + value transforms should stay fused: {chain:?}"
        );
    }

    #[test]
    fn two_input_calc_fuses_on_the_source_grid() {
        // scan a → calc(a ⊗ b) → agg → finalize, b scanned separately: the
        // col⊗col calc fuses into the scan's pipeline; b stays a single step
        // shared into it (and sliced per morsel by the executor).
        let mut p = Plan::new();
        let a = p.add(scan("a", 1000), vec![]);
        let b = p.add(scan("b", 1000), vec![]);
        let calc = p.add(
            OperatorSpec::Calc { op: BinaryOp::Mul, left_scalar: None, right_scalar: None },
            vec![a, b],
        );
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![calc]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        let fused = PipelinePlan::analyze(&p).unwrap();
        let chain = &fused.steps[fused.step_of[calc].unwrap()];
        assert!(
            matches!(chain, Step::Fused(pl) if pl.source == PipelineSource::Scan { node: a }
                && pl.stages == vec![calc, agg]),
            "col⊗col calc should fuse with its first-input scan: {chain:?}"
        );
        assert!(matches!(fused.steps[fused.step_of[b].unwrap()], Step::Single(_)));
    }

    #[test]
    fn if_then_else_fuses_in_chain() {
        // scan mask → pred-mask → ifthenelse(mask, vals) → agg: the guarded
        // projection streams, its `vals` input sliced on the same grid.
        let mut p = Plan::new();
        let m = p.add(scan("a", 1000), vec![]);
        let mask =
            p.add(OperatorSpec::PredMask { predicate: Predicate::cmp(CmpOp::Lt, 10i64) }, vec![m]);
        let vals = p.add(scan("b", 1000), vec![]);
        let ite =
            p.add(OperatorSpec::IfThenElse { otherwise: ScalarValue::I64(0) }, vec![mask, vals]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![ite]);
        p.set_root(agg);
        let fused = PipelinePlan::analyze(&p).unwrap();
        let chain = &fused.steps[fused.step_of[ite].unwrap()];
        assert!(
            matches!(chain, Step::Fused(pl) if pl.source == PipelineSource::Scan { node: m }
                && pl.stages == vec![mask, ite, agg]),
            "ifthenelse should fuse behind the mask chain: {chain:?}"
        );
    }

    #[test]
    fn aligned_second_input_does_not_fuse_after_a_stream_creator() {
        // scan a → select → fetch(b) → calc(⊗ c): the select compacts the
        // stream, so the col⊗col calc's grid-aligned slice of c would no
        // longer line up — the calc must start its own pipeline over the
        // assembled fetch output.
        let mut p = Plan::new();
        let a = p.add(scan("a", 1000), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 10i64) }, vec![a]);
        let b = p.add(scan("b", 1000), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let c = p.add(scan("c", 1000), vec![]);
        let calc = p.add(
            OperatorSpec::Calc { op: BinaryOp::Add, left_scalar: None, right_scalar: None },
            vec![fetch, c],
        );
        p.set_root(calc);
        let fused = PipelinePlan::analyze(&p).unwrap();
        let first = &fused.steps[fused.step_of[a].unwrap()];
        assert!(
            matches!(first, Step::Fused(pl) if pl.stages == vec![sel, fetch]),
            "chain should stop before the two-input calc: {first:?}"
        );
        let calc_step = &fused.steps[fused.step_of[calc].unwrap()];
        assert!(
            matches!(calc_step, Step::Fused(pl)
                if pl.source == PipelineSource::Chunk { producer: fetch }
                && pl.stages == vec![calc]),
            "two-input calc should restart over the assembled chunk: {calc_step:?}"
        );
    }

    #[test]
    fn group_agg_fuses_as_pipeline_terminal() {
        // scan k → groupagg(k, v) → mergegrouped, v scanned separately: the
        // grouped aggregate fuses into the key scan's pipeline as its
        // terminal stage, with v grid-sliced per morsel by the executor.
        let mut p = Plan::new();
        let k = p.add(scan("k", 1000), vec![]);
        let v = p.add(scan("v", 1000), vec![]);
        let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![k, v]);
        let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
        p.set_root(merge);
        let fused = PipelinePlan::analyze(&p).unwrap();
        let chain = &fused.steps[fused.step_of[group].unwrap()];
        assert!(
            matches!(chain, Step::Fused(pl) if pl.source == PipelineSource::Scan { node: k }
                && pl.stages == vec![group]),
            "groupagg should fuse with its key scan: {chain:?}"
        );
        assert!(matches!(fused.steps[fused.step_of[v].unwrap()], Step::Single(_)));
        assert!(matches!(fused.steps[fused.step_of[merge].unwrap()], Step::Single(_)));
    }

    #[test]
    fn group_agg_terminates_a_longer_chain() {
        // scan k → calc(k + 1) → groupagg(·, v): the aggregate joins at the
        // end of the calc chain and nothing may extend past it.
        let mut p = Plan::new();
        let k = p.add(scan("k", 1000), vec![]);
        let shifted = p.add(
            OperatorSpec::Calc {
                op: BinaryOp::Add,
                left_scalar: None,
                right_scalar: Some(ScalarValue::I64(1)),
            },
            vec![k],
        );
        let v = p.add(scan("v", 1000), vec![]);
        let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Min }, vec![shifted, v]);
        let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
        p.set_root(merge);
        let fused = PipelinePlan::analyze(&p).unwrap();
        let chain = &fused.steps[fused.step_of[group].unwrap()];
        assert!(
            matches!(chain, Step::Fused(pl) if pl.source == PipelineSource::Scan { node: k }
                && pl.stages == vec![shifted, group]),
            "groupagg should terminate the calc chain: {chain:?}"
        );
    }

    #[test]
    fn group_agg_does_not_fuse_after_a_stream_creator() {
        // scan a → select → fetch(k) → groupagg(·, v): the select compacts
        // the stream, so the grid-aligned cut of v would zip against the
        // wrong rows — the aggregate must restart over the assembled chunk.
        let mut p = Plan::new();
        let a = p.add(scan("a", 1000), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 10i64) }, vec![a]);
        let k = p.add(scan("k", 1000), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, k]);
        let v = p.add(scan("v", 1000), vec![]);
        let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![fetch, v]);
        let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
        p.set_root(merge);
        let fused = PipelinePlan::analyze(&p).unwrap();
        let first = &fused.steps[fused.step_of[a].unwrap()];
        assert!(
            matches!(first, Step::Fused(pl) if pl.stages == vec![sel, fetch]),
            "chain should stop before the groupagg: {first:?}"
        );
        let group_step = &fused.steps[fused.step_of[group].unwrap()];
        assert!(
            matches!(group_step, Step::Fused(pl)
                if pl.source == PipelineSource::Chunk { producer: fetch }
                && pl.stages == vec![group]),
            "groupagg should restart over the assembled chunk: {group_step:?}"
        );
    }

    #[test]
    fn self_grouping_group_agg_stays_single() {
        // groupagg(x, x): inputs[0] occurs twice — neither chain nor head
        // rule admits it; it runs whole, exactly like OAT.
        let mut p = Plan::new();
        let x = p.add(scan("x", 100), vec![]);
        let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Count }, vec![x, x]);
        let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
        p.set_root(merge);
        let fused = PipelinePlan::analyze(&p).unwrap();
        assert!(matches!(fused.steps[fused.step_of[group].unwrap()], Step::Single(_)));
    }

    #[test]
    fn self_zipping_calc_stays_single() {
        // calc(x, x): inputs[0] occurs twice, so neither the chain rule nor
        // the head rule admits it — it runs whole, exactly like OAT.
        let mut p = Plan::new();
        let a = p.add(scan("a", 100), vec![]);
        let sq = p.add(
            OperatorSpec::Calc { op: BinaryOp::Mul, left_scalar: None, right_scalar: None },
            vec![a, a],
        );
        p.set_root(sq);
        let fused = PipelinePlan::analyze(&p).unwrap();
        assert!(matches!(fused.steps[fused.step_of[sq].unwrap()], Step::Single(_)));
    }

    #[test]
    fn morsel_count_covers_all_rows() {
        assert_eq!(morsel_count(0, 1024), 1);
        assert_eq!(morsel_count(1, 1024), 1);
        assert_eq!(morsel_count(1024, 1024), 1);
        assert_eq!(morsel_count(1025, 1024), 2);
        assert_eq!(morsel_count(10_000, 1024), 10);
        assert_eq!(morsel_count(10, 0), 10, "morsel_rows 0 is clamped to 1");
    }
}
