//! The work-stealing scheduling policy.
//!
//! Layout follows the classic sharded-worker design (crossbeam-deque's
//! intended topology, as used by rayon and noria): every worker owns a
//! local deque; follow-up tasks produced *on* a worker are pushed to that
//! worker's own deque and popped LIFO-of-production order (FIFO deque,
//! stolen from the opposite end), so a chunk's consumer usually runs on the
//! core that just materialized the chunk — cache locality the shared FIFO
//! cannot offer. Tasks submitted from *outside* the pool (query seeding)
//! enter a shared [`Injector`]; a second injector forms the priority lane.
//!
//! Dispatch order per worker:
//! 1. own deque (locality),
//! 2. priority injector,
//! 3. normal injector (batch-steal: half the batch moves to the local deque),
//! 4. steal from sibling deques, round-robin starting after own index.
//!
//! Idle workers park on a condvar with a short timeout; every submission
//! notifies one sleeper.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

use crate::fault::FaultInjector;

use super::{
    DeferBackoff, Scheduler, SchedulerStats, SubmitTask, Task, TaskOrigin, WorkerCounters,
    IDLE_PARK,
};

/// Work-stealing scheduler: per-worker deques + shared injectors.
pub struct WorkStealing {
    injector: Injector<Task>,
    high_injector: Injector<Task>,
    /// Local deques, parked here until each worker thread claims its own at
    /// the top of [`WorkStealing::run_worker`] (the `Worker` half is
    /// single-owner by design).
    locals: Mutex<Vec<Option<Worker<Task>>>>,
    stealers: Vec<Stealer<Task>>,
    counters: Vec<WorkerCounters>,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    shutdown: AtomicBool,
    /// Chaos layer: consulted before every dispatch for injected stalls
    /// ([`crate::fault::FaultKind::DispatchStall`]).
    faults: Option<Arc<FaultInjector>>,
}

impl WorkStealing {
    /// Creates the scheduler for `n_workers` worker threads.
    pub fn new(n_workers: usize) -> Self {
        WorkStealing::with_faults(n_workers, None)
    }

    /// Creates the scheduler with an optional fault injector wired into the
    /// dispatch loop.
    pub(crate) fn with_faults(n_workers: usize, faults: Option<Arc<FaultInjector>>) -> Self {
        let n = n_workers.max(1);
        let locals: Vec<Worker<Task>> = (0..n).map(|_| Worker::new_fifo()).collect();
        let stealers = locals.iter().map(Worker::stealer).collect();
        WorkStealing {
            injector: Injector::new(),
            high_injector: Injector::new(),
            locals: Mutex::new(locals.into_iter().map(Some).collect()),
            stealers,
            counters: (0..n).map(|_| WorkerCounters::default()).collect(),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            faults,
        }
    }

    fn notify_one(&self) {
        // Lock/unlock pairs the notify with a sleeper's check-then-wait.
        drop(self.sleep_lock.lock());
        self.sleep_cv.notify_one();
    }

    fn notify_all(&self) {
        drop(self.sleep_lock.lock());
        self.sleep_cv.notify_all();
    }

    fn inject(&self, mut task: Task, requeue: bool) {
        if requeue {
            task.requeued();
        }
        if task.handle().priority() > 0 {
            self.high_injector.push(task);
        } else {
            self.injector.push(task);
        }
        self.notify_one();
    }

    /// One full scan for work from worker `worker`'s perspective.
    fn find_task(&self, worker: usize, local: &Worker<Task>) -> Option<(Task, TaskOrigin)> {
        if let Some(task) = local.pop() {
            return Some((task, TaskOrigin::Local));
        }
        loop {
            match self.high_injector.steal() {
                Steal::Success(task) => return Some((task, TaskOrigin::Injected)),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        // Single-task steals, not `steal_batch_and_pop`: a batch-move would
        // spill injected/stolen tasks into the local deque, where their later
        // pops would count as `Local` hits and inflate the locality metric
        // the fig. 19 experiment reports. One task per grab keeps every
        // dispatch labelled with its true origin (and with the mutex-backed
        // deque shim, batching would amortize nothing anyway).
        loop {
            match self.injector.steal() {
                Steal::Success(task) => return Some((task, TaskOrigin::Injected)),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        let n = self.stealers.len();
        for i in 1..n {
            let victim = (worker + i) % n;
            loop {
                match self.stealers[victim].steal() {
                    Steal::Success(task) => return Some((task, TaskOrigin::Stolen)),
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }

    fn queues_are_empty(&self, local: &Worker<Task>) -> bool {
        local.is_empty()
            && self.high_injector.is_empty()
            && self.injector.is_empty()
            && self.stealers.iter().all(Stealer::is_empty)
    }
}

/// Context submitter bound to the executing worker: follow-ups go to the
/// local deque.
struct LocalSubmitter<'a> {
    scheduler: &'a WorkStealing,
    local: &'a Worker<Task>,
}

impl SubmitTask for LocalSubmitter<'_> {
    fn submit_task(&self, task: Task) {
        self.local.push(task);
        // Another worker may be idle while this one now has >1 queued task.
        self.scheduler.notify_one();
    }
}

impl Scheduler for WorkStealing {
    fn name(&self) -> &'static str {
        "work-stealing"
    }

    fn submit(&self, task: Task) -> bool {
        if self.shutdown.load(Ordering::Acquire) {
            return false;
        }
        self.inject(task, false);
        true
    }

    fn run_worker(&self, worker: usize) {
        let local = self.locals.lock()[worker]
            .take()
            .expect("run_worker called twice for the same worker index");
        let submitter = LocalSubmitter { scheduler: self, local: &local };
        let mut backoff = DeferBackoff::default();
        loop {
            match self.find_task(worker, &local) {
                Some((task, origin)) => {
                    if !task.handle().acquire_slot() {
                        // Query at its admitted DOP: hand the task to the
                        // shared injector (not the local deque — other
                        // queries' local work should not sit behind it) and
                        // scan again.
                        self.inject(task, true);
                        backoff.deferred(&self.counters[worker]);
                        continue;
                    }
                    backoff.dispatched();
                    if let Some(faults) = &self.faults {
                        // Chaos: stall between dequeue and dispatch (emulates
                        // OS preemption at the scheduler boundary). Timing-
                        // only; lands in queue-wait accounting, not results.
                        let h = task.handle();
                        faults.maybe_stall(h.id(), h.signals().dispatched);
                    }
                    let queue_wait = task.queue_wait();
                    self.counters[worker].record(origin, queue_wait);
                    task.dispatch(worker, origin, queue_wait, &submitter);
                }
                None => {
                    if self.shutdown.load(Ordering::Acquire) && self.queues_are_empty(&local) {
                        return;
                    }
                    // Park until a submission notifies or the timeout forces
                    // a shutdown / steal re-check. The emptiness re-check
                    // happens *under the sleep lock*: a submitter pushes its
                    // task first and only then takes the lock to notify, so
                    // either the re-check sees the task or the notify is
                    // delivered to this (already waiting) worker — a wakeup
                    // can never fall into the gap between scan and wait,
                    // which would otherwise add up to one IDLE_PARK of
                    // phantom queue wait per task.
                    let mut guard = self.sleep_lock.lock();
                    if self.queues_are_empty(&local) && !self.shutdown.load(Ordering::Acquire) {
                        self.sleep_cv.wait_for(&mut guard, IDLE_PARK);
                    }
                }
            }
        }
    }

    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.notify_all();
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            policy: self.name(),
            workers: self.counters.iter().map(WorkerCounters::snapshot).collect(),
        }
    }

    fn pending_tasks(&self) -> usize {
        // Local deques are observed through their stealer halves; workers
        // drain concurrently, so the sum is a momentary approximation.
        self.injector.len()
            + self.high_injector.len()
            + self.stealers.iter().map(Stealer::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::QueryHandle;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn handle(id: u64, priority: u8, dop: usize) -> Arc<QueryHandle> {
        Arc::new(QueryHandle::new(id, priority, dop))
    }

    fn run_pool(sched: &Arc<WorkStealing>, n: usize) -> Vec<std::thread::JoinHandle<()>> {
        (0..n)
            .map(|w| {
                let sched = Arc::clone(sched);
                std::thread::spawn(move || sched.run_worker(w))
            })
            .collect()
    }

    #[test]
    fn injected_tasks_all_execute() {
        let sched = Arc::new(WorkStealing::new(3));
        let executed = Arc::new(AtomicUsize::new(0));
        for i in 0..50 {
            let executed = Arc::clone(&executed);
            assert!(sched.submit(Task::new(handle(i, 0, 0), move |_ctx| {
                executed.fetch_add(1, Ordering::AcqRel);
            })));
        }
        let workers = run_pool(&sched, 3);
        while executed.load(Ordering::Acquire) < 50 {
            std::thread::yield_now();
        }
        sched.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(sched.stats().total_executed(), 50);
        assert!(!sched.submit(Task::new(handle(99, 0, 0), |_ctx| {})));
    }

    #[test]
    fn follow_ups_stay_local_and_idle_workers_steal() {
        let sched = Arc::new(WorkStealing::new(2));
        let executed = Arc::new(AtomicUsize::new(0));
        // One seed task fans out 40 follow-ups from whichever worker runs it;
        // the other worker can only get work by stealing.
        let h = handle(1, 0, 0);
        let ex = Arc::clone(&executed);
        let h2 = Arc::clone(&h);
        sched.submit(Task::new(Arc::clone(&h), move |ctx| {
            for _ in 0..40 {
                let ex = Arc::clone(&ex);
                ctx.submit(Task::new(Arc::clone(&h2), move |_ctx| {
                    // Enough work to make stealing worthwhile.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    ex.fetch_add(1, Ordering::AcqRel);
                }));
            }
        }));
        let workers = run_pool(&sched, 2);
        while executed.load(Ordering::Acquire) < 40 {
            std::thread::yield_now();
        }
        sched.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        let stats = sched.stats();
        assert_eq!(stats.total_executed(), 41);
        assert!(stats.total_local_hits() > 0, "producer's worker never popped locally: {stats:?}");
    }

    #[test]
    fn priority_lane_preempts_the_normal_injector() {
        let sched = Arc::new(WorkStealing::new(1));
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..3 {
            let order = Arc::clone(&order);
            sched.submit(Task::new(handle(i, 0, 0), move |_ctx| order.lock().push(("normal", i))));
        }
        for i in 0..2 {
            let order = Arc::clone(&order);
            sched.submit(Task::new(handle(10 + i, 3, 0), move |_ctx| {
                order.lock().push(("high", i))
            }));
        }
        let workers = run_pool(&sched, 1);
        while order.lock().len() < 5 {
            std::thread::yield_now();
        }
        sched.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        let got = order.lock().clone();
        assert_eq!(got[0].0, "high", "priority task not served first: {got:?}");
        assert_eq!(got[1].0, "high", "priority tasks not served first: {got:?}");
    }

    #[test]
    fn dop_cap_is_never_exceeded_under_stealing() {
        let sched = Arc::new(WorkStealing::new(3));
        let h = handle(5, 0, 2);
        let executed = Arc::new(AtomicUsize::new(0));
        let concurrent = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        for _ in 0..12 {
            let executed = Arc::clone(&executed);
            let concurrent = Arc::clone(&concurrent);
            let max_seen = Arc::clone(&max_seen);
            sched.submit(Task::new(Arc::clone(&h), move |_ctx| {
                let now = concurrent.fetch_add(1, Ordering::AcqRel) + 1;
                max_seen.fetch_max(now, Ordering::AcqRel);
                std::thread::sleep(std::time::Duration::from_millis(1));
                concurrent.fetch_sub(1, Ordering::AcqRel);
                executed.fetch_add(1, Ordering::AcqRel);
            }));
        }
        let workers = run_pool(&sched, 3);
        while executed.load(Ordering::Acquire) < 12 {
            std::thread::yield_now();
        }
        sched.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(executed.load(Ordering::Acquire), 12);
        assert!(max_seen.load(Ordering::Acquire) <= 2, "admitted DOP 2 was exceeded");
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let sched = Arc::new(WorkStealing::new(1));
        let executed = Arc::new(AtomicUsize::new(0));
        sched.submit(Task::new(handle(1, 0, 0), |_ctx| panic!("boom")));
        let ex = Arc::clone(&executed);
        sched.submit(Task::new(handle(2, 0, 0), move |_ctx| {
            ex.fetch_add(1, Ordering::AcqRel);
        }));
        let workers = run_pool(&sched, 1);
        while executed.load(Ordering::Acquire) < 1 {
            std::thread::yield_now();
        }
        sched.shutdown();
        for w in workers {
            w.join().expect("worker survived the panicking task");
        }
        assert_eq!(sched.stats().total_executed(), 2);
    }

    #[test]
    fn run_worker_twice_for_same_index_panics() {
        let sched = Arc::new(WorkStealing::new(1));
        sched.shutdown();
        sched.run_worker(0); // returns immediately: shutdown + empty
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sched.run_worker(0)));
        assert!(result.is_err());
    }
}
