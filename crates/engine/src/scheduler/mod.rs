//! Pluggable task scheduling for the execution engine.
//!
//! The paper's run-time environment separates *what* runs (dataflow
//! dependency tracking in [`crate::executor`]) from *where and when* it runs
//! (the scheduler). This module makes the second half pluggable:
//!
//! * [`Scheduler`] — the policy interface: accept ready tasks, hand them to
//!   worker threads, expose per-worker counters;
//! * [`global::GlobalQueue`] — the original shared-FIFO policy (all queries
//!   feed one MPMC queue; default, byte-compatible with the seed engine);
//! * [`stealing::WorkStealing`] — per-worker deques with an injector for
//!   cross-query submission and local-first pop for cache locality, the
//!   work-stealing idiom of §4.1.1 (and of noria's sharded workers);
//! * [`QueryHandle`] — per-query scheduling state: query id, priority,
//!   admitted degree of parallelism, and a cancellation flag, so admission
//!   control ([`crate::executor::Engine::execute_with_handle`]) is a real
//!   scheduler policy rather than a plan-rewriting shim;
//! * [`SchedulerStats`] / [`WorkerStats`] — per-worker `local` / `steal` /
//!   `inject` hit counters plus accumulated queue-wait time.
//!
//! **Queue-wait feedback.** Every task records the time between becoming
//! runnable (all inputs materialized) and starting execution. The executor
//! writes it into [`crate::profiler::OperatorProfile::queue_wait_us`],
//! separating "the operator was slow" from "the operator sat in the queue" —
//! the signal the adaptive convergence loop uses to avoid debiting a plan for
//! scheduler interference it did not cause (paper §4.2.3's concurrent-
//! workload analysis).
//!
//! Both policies guarantee identical query *results*: dependency order is
//! enforced by the executor's atomic dependency counters, never by queue
//! order. The policies differ only in locality, fairness and contention.

pub mod global;
pub mod stealing;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::fault::FaultInjector;
use crate::profiler::{DopEvent, DopPhase};

/// Which scheduling policy an engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// One shared MPMC FIFO for all queries (the seed engine's behavior).
    #[default]
    GlobalQueue,
    /// Per-worker deques + injector with local-first pop and stealing.
    WorkStealing,
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerPolicy::GlobalQueue => f.write_str("global-queue"),
            SchedulerPolicy::WorkStealing => f.write_str("work-stealing"),
        }
    }
}

impl SchedulerPolicy {
    /// All selectable policies (used by experiments sweeping over them).
    pub const ALL: [SchedulerPolicy; 2] =
        [SchedulerPolicy::GlobalQueue, SchedulerPolicy::WorkStealing];

    /// Builds a scheduler instance for `n_workers` worker threads. A fault
    /// injector, when present, is consulted by the policy's dispatch loop
    /// for [`crate::fault::FaultKind::DispatchStall`] injection.
    pub(crate) fn build(
        self,
        n_workers: usize,
        faults: Option<Arc<FaultInjector>>,
    ) -> Arc<dyn Scheduler> {
        match self {
            SchedulerPolicy::GlobalQueue => {
                Arc::new(global::GlobalQueue::with_faults(n_workers, faults))
            }
            SchedulerPolicy::WorkStealing => {
                Arc::new(stealing::WorkStealing::with_faults(n_workers, faults))
            }
        }
    }
}

/// Live per-query execution signals accumulated by task dispatch, readable
/// while the query is still running — the controller's input
/// ([`crate::controller`]). All values are cumulative since the handle was
/// created; consumers diff successive snapshots to get per-interval rates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuerySignals {
    /// Total time the query's dispatched tasks spent queued, microseconds.
    pub queue_wait_us: u64,
    /// Total time the query's dispatched tasks spent executing, microseconds.
    pub busy_us: u64,
    /// Number of tasks dispatched so far.
    pub dispatched: u64,
    /// Scan morsels served from a shared scan group's published windows
    /// instead of re-executing the scan ([`crate::sharing`]).
    pub morsels_shared: u64,
    /// Scan morsels this query executed privately (first to need the window,
    /// or sharing disabled).
    pub morsels_private: u64,
}

/// Per-query scheduling state, shared between the submitting client, the
/// scheduler and every task of the query.
#[derive(Debug)]
pub struct QueryHandle {
    id: u64,
    priority: u8,
    admitted_dop: AtomicUsize,
    cancelled: AtomicBool,
    running: AtomicUsize,
    /// Tasks of this query alive anywhere in the scheduler: created and not
    /// yet fully dispatched (queued, deferred, or executing). The executor
    /// drains this to zero before a submission returns — see
    /// [`QueryHandle::inflight_tasks`].
    inflight: AtomicUsize,
    /// Epoch for [`DopEvent::at_us`] offsets (handle creation time).
    created: Instant,
    /// Admitted-DOP change history: the initial grant plus every
    /// [`QueryHandle::set_admitted_dop`] call, in order.
    dop_events: Mutex<Vec<DopEvent>>,
    /// Per-query morsel-size override (rows); `0` = engine default.
    morsel_rows: AtomicUsize,
    /// Deadline as a nanosecond offset from `created`; `0` = no deadline.
    /// Nanosecond granularity so an instantly expired deadline
    /// (`set_deadline(Duration::ZERO)`) is observed as exceeded on the very
    /// next check, even when both happen within the same microsecond.
    deadline_ns: AtomicU64,
    /// Whether the [`DopPhase::Timeout`] timeline event was recorded (at
    /// most one, by whichever checkpoint observes the expiry first).
    timeout_recorded: AtomicBool,
    queue_wait_us: AtomicU64,
    busy_us: AtomicU64,
    dispatched: AtomicU64,
    morsels_shared: AtomicU64,
    morsels_private: AtomicU64,
}

impl QueryHandle {
    /// Creates a handle. `admitted_dop == 0` means "no per-query cap".
    pub(crate) fn new(id: u64, priority: u8, admitted_dop: usize) -> Self {
        QueryHandle::with_phase(id, priority, admitted_dop, DopPhase::Admit)
    }

    /// Creates a handle whose initial timeline event carries `phase` —
    /// [`DopPhase::Reserve`] for census reservations
    /// ([`crate::Engine::reserve_admitted`]), [`DopPhase::Admit`] otherwise.
    pub(crate) fn with_phase(id: u64, priority: u8, admitted_dop: usize, phase: DopPhase) -> Self {
        QueryHandle {
            id,
            priority,
            admitted_dop: AtomicUsize::new(admitted_dop),
            cancelled: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            created: Instant::now(),
            dop_events: Mutex::new(vec![DopEvent { at_us: 0, dop: admitted_dop, phase }]),
            morsel_rows: AtomicUsize::new(0),
            deadline_ns: AtomicU64::new(0),
            timeout_recorded: AtomicBool::new(false),
            queue_wait_us: AtomicU64::new(0),
            busy_us: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            morsels_shared: AtomicU64::new(0),
            morsels_private: AtomicU64::new(0),
        }
    }

    /// Records the submission of a reserved query: appends a
    /// [`DopPhase::Submit`] event restating the grant currently in force,
    /// closing the reservation-held window in the timeline.
    pub(crate) fn mark_submitted(&self) {
        let mut events = self.dop_events.lock();
        let dop = self.admitted_dop.load(Ordering::Acquire);
        events.push(DopEvent {
            at_us: self.created.elapsed().as_micros() as u64,
            dop,
            phase: DopPhase::Submit,
        });
    }

    /// Engine-assigned query id (unique per engine instance).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Scheduling priority; tasks of priority `> 0` are dispatched before
    /// normal-priority tasks waiting in the same shared queue.
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// Admitted degree of parallelism: at most this many tasks of the query
    /// execute simultaneously (`0` = unlimited). This is how admission
    /// control becomes a scheduler policy — the plan can stay maximally
    /// parallel while the scheduler throttles its concurrent footprint.
    pub fn admitted_dop(&self) -> usize {
        self.admitted_dop.load(Ordering::Acquire)
    }

    /// Re-grants the admitted degree of parallelism mid-flight (e.g. when
    /// another client leaves and resources free up, or claws back headroom
    /// when new clients are admitted). Takes effect at the *next* slot
    /// acquisition: dispatch re-reads the cap for every task, so a raise is
    /// picked up by already-queued tasks and a claw-back below the number of
    /// currently running tasks simply stops granting new slots until the
    /// running tasks drain — nothing is pre-empted.
    ///
    /// Every call is recorded in the handle's DOP timeline, which the
    /// executor publishes as [`crate::profiler::QueryProfile::dop_timeline`].
    ///
    /// ```
    /// use apq_engine::{Engine, QueryOptions};
    ///
    /// let engine = Engine::with_workers(2);
    /// let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
    /// assert_eq!(handle.admitted_dop(), 1);
    /// // A resource controller (or the client) re-grants mid-flight:
    /// handle.set_admitted_dop(4);
    /// assert_eq!(handle.admitted_dop(), 4);
    /// let timeline = handle.dop_timeline();
    /// assert_eq!(timeline.len(), 2); // initial grant + the re-grant
    /// assert_eq!(timeline[0].dop, 1);
    /// assert_eq!(timeline[1].dop, 4);
    /// ```
    pub fn set_admitted_dop(&self, dop: usize) {
        // Store and timeline append happen under one lock so concurrent
        // setters (controller thread vs. client) cannot leave the recorded
        // timeline ending on a different value than the live cap.
        let mut events = self.dop_events.lock();
        self.admitted_dop.store(dop, Ordering::Release);
        events.push(DopEvent {
            at_us: self.created.elapsed().as_micros() as u64,
            dop,
            phase: DopPhase::Regrant,
        });
    }

    /// The admitted-DOP change history: the initial grant (at offset 0) plus
    /// one entry per [`QueryHandle::set_admitted_dop`] call, in call order.
    pub fn dop_timeline(&self) -> Vec<DopEvent> {
        self.dop_events.lock().clone()
    }

    /// Sets the per-query morsel-size override, in rows (`0` clears it back
    /// to the engine default). Morsel-driven execution re-reads this at every
    /// pipeline launch, so a running query's later pipelines pick the new
    /// size up; morsels of an already-launched pipeline keep theirs (the
    /// fan-out is fixed at launch).
    pub fn set_morsel_rows(&self, rows: usize) {
        self.morsel_rows.store(rows, Ordering::Release);
    }

    /// The current per-query morsel-size override; `None` = engine default.
    pub fn morsel_rows_hint(&self) -> Option<usize> {
        match self.morsel_rows.load(Ordering::Acquire) {
            0 => None,
            rows => Some(rows),
        }
    }

    /// Test-only: injects synthetic cumulative signals, so controller ticks
    /// can be driven without real executions.
    #[cfg(test)]
    pub(crate) fn test_add_signals(&self, queue_wait_us: u64, busy_us: u64) {
        self.queue_wait_us.fetch_add(queue_wait_us, Ordering::Relaxed);
        self.busy_us.fetch_add(busy_us, Ordering::Relaxed);
        self.dispatched.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the query's cumulative dispatch signals (queue wait, busy
    /// time, task count) — readable mid-flight, the controller's input.
    pub fn signals(&self) -> QuerySignals {
        QuerySignals {
            queue_wait_us: self.queue_wait_us.load(Ordering::Relaxed),
            busy_us: self.busy_us.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            morsels_shared: self.morsels_shared.load(Ordering::Relaxed),
            morsels_private: self.morsels_private.load(Ordering::Relaxed),
        }
    }

    /// Counts one scan morsel of this query: `shared == true` when it was
    /// served from a scan group's published window, `false` when this query
    /// executed the scan slice itself ([`crate::sharing`]).
    pub(crate) fn record_morsel(&self, shared: bool) {
        if shared {
            self.morsels_shared.fetch_add(1, Ordering::Relaxed);
        } else {
            self.morsels_private.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cumulative scan morsels served to this query from shared scan-group
    /// windows (one scan pass amortized across consumers).
    pub fn morsels_shared(&self) -> u64 {
        self.morsels_shared.load(Ordering::Relaxed)
    }

    /// Cumulative scan morsels this query executed privately.
    pub fn morsels_private(&self) -> u64 {
        self.morsels_private.load(Ordering::Relaxed)
    }

    /// Requests cancellation: tasks already running finish, queued tasks of
    /// the query fail it with [`crate::EngineError::Cancelled`] on dispatch.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// True once [`QueryHandle::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Arms (or tightens) the query's deadline to `timeout` from now. Every
    /// point that reads the cancel flag — morsel dispatch, operator task
    /// bodies, slot acquisition — also checks the deadline, so expiry fails
    /// the query with [`crate::EngineError::DeadlineExceeded`] at the next
    /// checkpoint; tasks already executing finish (nothing is pre-empted),
    /// exactly like cancellation.
    pub fn set_deadline(&self, timeout: Duration) {
        let offset =
            self.created.elapsed().saturating_add(timeout).as_nanos().min(u64::MAX as u128) as u64;
        // `0` encodes "no deadline", so an instantly expired deadline still
        // stores a nonzero offset.
        self.deadline_ns.store(offset.max(1), Ordering::Release);
    }

    /// The query's deadline, if armed ([`QueryHandle::set_deadline`]).
    pub fn deadline(&self) -> Option<Instant> {
        match self.deadline_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(self.created + Duration::from_nanos(ns)),
        }
    }

    /// True once an armed deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        match self.deadline_ns.load(Ordering::Acquire) {
            0 => false,
            ns => self.created.elapsed().as_nanos() as u64 >= ns,
        }
    }

    /// Records the [`DopPhase::Timeout`] timeline event (first caller wins;
    /// later calls are no-ops so concurrent checkpoints record one entry).
    pub(crate) fn mark_deadline_exceeded(&self) {
        if self.timeout_recorded.swap(true, Ordering::AcqRel) {
            return;
        }
        self.dop_events.lock().push(DopEvent {
            at_us: self.created.elapsed().as_micros() as u64,
            dop: 0,
            phase: DopPhase::Timeout,
        });
    }

    /// Number of this query's tasks currently executing.
    pub fn running(&self) -> usize {
        self.running.load(Ordering::Acquire)
    }

    /// Number of this query's tasks alive anywhere in the scheduler —
    /// queued, deferred by the DOP cap, or executing. Unlike
    /// [`QueryHandle::running`] (slots held right now), this spans the
    /// whole task lifetime, so `0` means the pool holds no trace of the
    /// query. The executor drains it to zero before a submission returns,
    /// failed and timed-out submissions included, which is what lets chaos
    /// tests assert `running() == 0` immediately after an error.
    pub fn inflight_tasks(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Counts a task of this query entering the scheduler
    /// ([`Task::new`]).
    pub(crate) fn task_spawned(&self) {
        self.inflight.fetch_add(1, Ordering::AcqRel);
    }

    /// Counts a task of this query leaving the scheduler for good (fully
    /// dispatched, after its slot was released).
    pub(crate) fn task_completed(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Atomically claims an execution slot for one task. Fails (without
    /// side effects) when the query already runs at its admitted DOP; always
    /// succeeds for uncapped, cancelled or deadline-expired queries
    /// (cancelled/expired tasks must run so the failure propagates). A
    /// `true` return obligates the caller to dispatch the task, which
    /// releases the slot on completion.
    pub(crate) fn acquire_slot(&self) -> bool {
        let cap = self.admitted_dop.load(Ordering::Acquire);
        if cap == 0 || self.is_cancelled() || self.deadline_exceeded() {
            self.running.fetch_add(1, Ordering::AcqRel);
            return true;
        }
        self.running
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |running| {
                (running < cap).then_some(running + 1)
            })
            .is_ok()
    }

    pub(crate) fn task_finished(&self) {
        self.running.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Where a dispatched task came from, from the executing worker's viewpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskOrigin {
    /// Popped from the executing worker's own local deque.
    Local,
    /// Stolen from another worker's deque.
    Stolen,
    /// Taken from the shared queue / injector.
    Injected,
}

/// Execution context handed to a running task.
pub struct TaskContext<'a> {
    /// Index of the executing worker thread.
    pub worker: usize,
    /// Time the task spent between submission and dispatch.
    pub queue_wait: Duration,
    /// Which queue the task was dispatched from.
    pub origin: TaskOrigin,
    submitter: &'a dyn SubmitTask,
}

impl TaskContext<'_> {
    /// Submits a follow-up task from inside a running task. Work-stealing
    /// schedulers push it onto the executing worker's local deque (cache
    /// locality: the consumer of a chunk runs where the chunk was produced,
    /// unless stolen).
    pub fn submit(&self, task: Task) {
        self.submitter.submit_task(task);
    }
}

/// Internal: how a context forwards follow-up tasks.
pub(crate) trait SubmitTask {
    fn submit_task(&self, task: Task);
}

/// A unit of schedulable work: one ready plan operator of one query.
pub struct Task {
    run: Box<dyn FnOnce(&TaskContext<'_>) + Send>,
    handle: Arc<QueryHandle>,
    submitted_at: Instant,
}

impl Task {
    /// Creates a task bound to a query handle.
    pub fn new(
        handle: Arc<QueryHandle>,
        run: impl FnOnce(&TaskContext<'_>) + Send + 'static,
    ) -> Self {
        handle.task_spawned();
        Task { run: Box::new(run), handle, submitted_at: Instant::now() }
    }

    /// The owning query's handle.
    pub fn handle(&self) -> &Arc<QueryHandle> {
        &self.handle
    }

    /// Resets the wait clock; called when a task is re-queued for policy
    /// reasons (DOP cap) so the second wait does not double-count.
    pub(crate) fn requeued(&mut self) {
        self.submitted_at = Instant::now();
    }

    /// Time elapsed since the task was (re-)submitted.
    pub(crate) fn queue_wait(&self) -> Duration {
        self.submitted_at.elapsed()
    }

    /// Runs the task. The caller must have claimed an execution slot via
    /// [`QueryHandle::acquire_slot`]; dispatch releases it on completion.
    ///
    /// A panicking task must not kill the worker thread (the pool is shared
    /// by every client) nor leak the DOP slot, so the panic is contained
    /// here. The executor's task body additionally converts panics into a
    /// query-level [`crate::EngineError::WorkerPanicked`] failure so the
    /// submitting client is woken rather than left waiting forever.
    pub(crate) fn dispatch(
        self,
        worker: usize,
        origin: TaskOrigin,
        queue_wait: Duration,
        submitter: &dyn SubmitTask,
    ) {
        let ctx = TaskContext { worker, queue_wait, origin, submitter };
        let started = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (self.run)(&ctx)));
        // Accumulate the query's live signals (controller input) before the
        // slot is released, so a controller tick never sees a task counted
        // as neither running nor accounted.
        self.handle.queue_wait_us.fetch_add(queue_wait.as_micros() as u64, Ordering::Relaxed);
        self.handle.busy_us.fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.handle.dispatched.fetch_add(1, Ordering::Relaxed);
        self.handle.task_finished();
        // Slot released first, lifetime count second: `inflight == 0`
        // therefore implies `running == 0` for this query's tasks.
        self.handle.task_completed();
        if result.is_err() {
            // Swallowed by design: the worker must survive. The query itself
            // was already failed by the task body's own panic handler.
        }
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task").field("query", &self.handle.id()).finish()
    }
}

/// The scheduling-policy interface.
///
/// The executor tracks dataflow dependencies and submits a [`Task`] exactly
/// when it becomes runnable; the scheduler decides which worker runs it when.
/// Implementations must run every submitted task exactly once (until
/// [`Scheduler::shutdown`]), but are free to reorder arbitrarily — dependency
/// order is the executor's responsibility, not the scheduler's.
pub trait Scheduler: Send + Sync {
    /// Policy name (stable, for reports).
    fn name(&self) -> &'static str;

    /// Submits a task from outside the worker pool (query seeding). Returns
    /// `false` when the scheduler has been shut down.
    fn submit(&self, task: Task) -> bool;

    /// Runs worker `worker`'s dispatch loop until shutdown. Called exactly
    /// once per worker index, from that worker's thread.
    fn run_worker(&self, worker: usize);

    /// Asks all workers to exit once the queues are drained of runnable work.
    fn shutdown(&self);

    /// Snapshot of the per-worker counters.
    fn stats(&self) -> SchedulerStats;

    /// Number of submitted tasks not yet dispatched — the pool-pressure
    /// signal ([`crate::controller`] reads it every tick). Approximate by
    /// design: queues are concurrently drained while counting.
    fn pending_tasks(&self) -> usize;
}

/// Per-worker counters, updated by the dispatch loops.
#[derive(Debug, Default)]
pub(crate) struct WorkerCounters {
    pub(crate) executed: AtomicU64,
    pub(crate) local_hits: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) injector_hits: AtomicU64,
    pub(crate) queue_wait_us: AtomicU64,
    pub(crate) dop_deferrals: AtomicU64,
}

impl WorkerCounters {
    pub(crate) fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            executed: self.executed.load(Ordering::Relaxed),
            local_hits: self.local_hits.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            injector_hits: self.injector_hits.load(Ordering::Relaxed),
            queue_wait_us: self.queue_wait_us.load(Ordering::Relaxed),
            dop_deferrals: self.dop_deferrals.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record(&self, origin: TaskOrigin, queue_wait: Duration) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        match origin {
            TaskOrigin::Local => self.local_hits.fetch_add(1, Ordering::Relaxed),
            TaskOrigin::Stolen => self.steals.fetch_add(1, Ordering::Relaxed),
            TaskOrigin::Injected => self.injector_hits.fetch_add(1, Ordering::Relaxed),
        };
        self.queue_wait_us.fetch_add(queue_wait.as_micros() as u64, Ordering::Relaxed);
    }
}

/// Snapshot of one worker's dispatch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Tasks popped from the worker's own deque (work-stealing only).
    pub local_hits: u64,
    /// Tasks stolen from sibling workers' deques (work-stealing only).
    pub steals: u64,
    /// Tasks taken from the shared queue / injector.
    pub injector_hits: u64,
    /// Total time tasks executed by this worker spent queued, microseconds.
    pub queue_wait_us: u64,
    /// Times a task was re-queued because its query hit its admitted DOP.
    pub dop_deferrals: u64,
}

/// Snapshot of a scheduler's per-worker counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Policy name ([`Scheduler::name`]).
    pub policy: &'static str,
    /// One entry per worker thread, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl SchedulerStats {
    /// Total tasks executed across workers.
    pub fn total_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.executed).sum()
    }

    /// Total local-deque hits across workers.
    pub fn total_local_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.local_hits).sum()
    }

    /// Total steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total shared-queue / injector hits across workers.
    pub fn total_injector_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.injector_hits).sum()
    }

    /// Total queued time across all executed tasks, microseconds.
    pub fn total_queue_wait_us(&self) -> u64 {
        self.workers.iter().map(|w| w.queue_wait_us).sum()
    }

    /// Total DOP-cap deferrals across workers.
    pub fn total_dop_deferrals(&self) -> u64 {
        self.workers.iter().map(|w| w.dop_deferrals).sum()
    }

    /// Fraction of executed tasks that ran on the worker that enqueued them
    /// (locality; meaningful for the work-stealing policy).
    pub fn locality(&self) -> f64 {
        let executed = self.total_executed();
        if executed == 0 {
            return 0.0;
        }
        self.total_local_hits() as f64 / executed as f64
    }
}

/// How long an idle worker sleeps between queue re-scans. A submission
/// notifies sleepers immediately; the timeout only bounds the staleness of
/// the shutdown check and of DOP-cap re-evaluation.
pub(crate) const IDLE_PARK: Duration = Duration::from_micros(500);

/// Shared backoff for DOP-cap deferrals, so both dispatch loops keep
/// identical policy: a worker that keeps popping tasks of a capped query
/// re-queues them, and after `LIMIT` consecutive deferrals sleeps one
/// [`IDLE_PARK`] instead of spinning (the capped query's running tasks
/// finish on other workers and free the cap).
#[derive(Default)]
pub(crate) struct DeferBackoff {
    streak: u32,
}

impl DeferBackoff {
    const LIMIT: u32 = 8;

    /// Records one deferral in the worker's counters and sleeps briefly when
    /// the worker has deferred [`Self::LIMIT`] tasks in a row.
    pub(crate) fn deferred(&mut self, counters: &WorkerCounters) {
        counters.dop_deferrals.fetch_add(1, Ordering::Relaxed);
        self.streak += 1;
        if self.streak > Self::LIMIT {
            std::thread::sleep(IDLE_PARK);
            self.streak = 0;
        }
    }

    /// Resets the streak after a successful dispatch.
    pub(crate) fn dispatched(&mut self) {
        self.streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_display_and_default() {
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::GlobalQueue);
        assert_eq!(SchedulerPolicy::GlobalQueue.to_string(), "global-queue");
        assert_eq!(SchedulerPolicy::WorkStealing.to_string(), "work-stealing");
        assert_eq!(SchedulerPolicy::ALL.len(), 2);
    }

    #[test]
    fn query_handle_state_machine() {
        let h = QueryHandle::new(7, 2, 3);
        assert_eq!(h.id(), 7);
        assert_eq!(h.priority(), 2);
        assert_eq!(h.admitted_dop(), 3);
        assert!(!h.is_cancelled());
        assert_eq!(h.running(), 0);
        assert!(h.acquire_slot());
        assert!(h.acquire_slot());
        assert!(h.acquire_slot());
        assert!(!h.acquire_slot(), "fourth slot beyond admitted DOP 3");
        assert_eq!(h.running(), 3);
        h.task_finished();
        assert!(h.acquire_slot());
        h.set_admitted_dop(0);
        assert!(h.acquire_slot(), "dop 0 means unlimited");
        assert!(h.acquire_slot());
        h.cancel();
        assert!(h.is_cancelled());
        assert!(h.acquire_slot(), "cancelled tasks always dispatch");
    }

    #[test]
    fn deadline_state_machine() {
        let h = QueryHandle::new(9, 0, 1);
        assert!(h.deadline().is_none());
        assert!(!h.deadline_exceeded());
        h.set_deadline(Duration::from_secs(3600));
        assert!(h.deadline().is_some());
        assert!(!h.deadline_exceeded(), "one-hour deadline expired instantly");
        h.set_deadline(Duration::ZERO);
        assert!(h.deadline_exceeded());
        // Expired queries always get a slot, like cancelled ones, so the
        // failure can propagate through dispatch.
        assert!(h.acquire_slot());
        h.task_finished();
        // The Timeout timeline entry is recorded exactly once.
        h.mark_deadline_exceeded();
        h.mark_deadline_exceeded();
        let timeline = h.dop_timeline();
        let timeouts: Vec<_> = timeline.iter().filter(|e| e.phase == DopPhase::Timeout).collect();
        assert_eq!(timeouts.len(), 1);
        assert_eq!(timeouts[0].dop, 0);
    }

    #[test]
    fn slot_acquisition_is_race_free() {
        let h = Arc::new(QueryHandle::new(1, 0, 2));
        let acquired = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let h = Arc::clone(&h);
                let acquired = Arc::clone(&acquired);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        if h.acquire_slot() {
                            let now = acquired.fetch_add(1, Ordering::AcqRel) + 1;
                            assert!(now <= 2, "DOP cap 2 exceeded: {now} slots live");
                            acquired.fetch_sub(1, Ordering::AcqRel);
                            h.task_finished();
                        }
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.running(), 0);
    }

    #[test]
    fn worker_counters_accumulate_by_origin() {
        let c = WorkerCounters::default();
        c.record(TaskOrigin::Local, Duration::from_micros(10));
        c.record(TaskOrigin::Stolen, Duration::from_micros(20));
        c.record(TaskOrigin::Injected, Duration::from_micros(30));
        let s = c.snapshot();
        assert_eq!(s.executed, 3);
        assert_eq!(s.local_hits, 1);
        assert_eq!(s.steals, 1);
        assert_eq!(s.injector_hits, 1);
        assert_eq!(s.queue_wait_us, 60);
    }

    #[test]
    fn stats_aggregation() {
        let stats = SchedulerStats {
            policy: "test",
            workers: vec![
                WorkerStats {
                    executed: 4,
                    local_hits: 3,
                    steals: 1,
                    injector_hits: 0,
                    queue_wait_us: 100,
                    dop_deferrals: 2,
                },
                WorkerStats {
                    executed: 6,
                    local_hits: 3,
                    steals: 2,
                    injector_hits: 1,
                    queue_wait_us: 50,
                    dop_deferrals: 0,
                },
            ],
        };
        assert_eq!(stats.total_executed(), 10);
        assert_eq!(stats.total_local_hits(), 6);
        assert_eq!(stats.total_steals(), 3);
        assert_eq!(stats.total_injector_hits(), 1);
        assert_eq!(stats.total_queue_wait_us(), 150);
        assert_eq!(stats.total_dop_deferrals(), 2);
        assert!((stats.locality() - 0.6).abs() < 1e-12);
        let empty = SchedulerStats { policy: "t", workers: vec![] };
        assert_eq!(empty.locality(), 0.0);
    }
}
