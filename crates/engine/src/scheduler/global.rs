//! The shared-FIFO scheduling policy (the seed engine's behavior).
//!
//! All queries feed one MPMC queue; idle workers take the oldest ready task
//! regardless of which query produced it. Simple and fair-ish, but with no
//! locality (a consumer rarely runs where its producer ran) and no isolation
//! (one partition-happy query floods the queue for everyone) — exactly the
//! interference regime the paper's concurrent experiments study.
//!
//! A second, higher-priority lane serves queries with
//! [`QueryHandle::priority`]` > 0`; it is drained before the normal lane.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::fault::FaultInjector;

#[allow(unused_imports)] // rustdoc link target
use super::QueryHandle;
use super::{
    DeferBackoff, Scheduler, SchedulerStats, SubmitTask, Task, TaskOrigin, WorkerCounters,
    IDLE_PARK,
};

/// Shared-FIFO scheduler: one global queue (plus a priority lane) for every
/// query in flight.
pub struct GlobalQueue {
    /// Senders live behind a mutex so `shutdown` can drop them, which
    /// disconnects the channels and lets workers drain and exit.
    lanes: Mutex<Option<Lanes>>,
    normal_rx: Receiver<Task>,
    high_rx: Receiver<Task>,
    counters: Vec<WorkerCounters>,
    shutdown: AtomicBool,
    /// Chaos layer: consulted before every dispatch for injected stalls
    /// ([`crate::fault::FaultKind::DispatchStall`]).
    faults: Option<Arc<FaultInjector>>,
}

struct Lanes {
    normal: Sender<Task>,
    high: Sender<Task>,
}

impl GlobalQueue {
    /// Creates the scheduler for `n_workers` worker threads.
    pub fn new(n_workers: usize) -> Self {
        GlobalQueue::with_faults(n_workers, None)
    }

    /// Creates the scheduler with an optional fault injector wired into the
    /// dispatch loop.
    pub(crate) fn with_faults(n_workers: usize, faults: Option<Arc<FaultInjector>>) -> Self {
        let (normal_tx, normal_rx) = unbounded();
        let (high_tx, high_rx) = unbounded();
        GlobalQueue {
            lanes: Mutex::new(Some(Lanes { normal: normal_tx, high: high_tx })),
            normal_rx,
            high_rx,
            counters: (0..n_workers.max(1)).map(|_| WorkerCounters::default()).collect(),
            shutdown: AtomicBool::new(false),
            faults,
        }
    }

    fn enqueue(&self, mut task: Task, requeue: bool) -> bool {
        if requeue {
            task.requeued();
        }
        let lanes = self.lanes.lock();
        match lanes.as_ref() {
            Some(l) => {
                let lane = if task.handle().priority() > 0 { &l.high } else { &l.normal };
                lane.send(task).is_ok()
            }
            None => false,
        }
    }

    /// Takes the next task, draining the priority lane first. Returns `None`
    /// once both lanes are disconnected and empty.
    fn next_task(&self) -> Option<(Task, TaskOrigin)> {
        loop {
            match self.high_rx.try_recv() {
                Ok(task) => return Some((task, TaskOrigin::Injected)),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {}
            }
            match self.normal_rx.recv_timeout(IDLE_PARK) {
                Ok(task) => return Some((task, TaskOrigin::Injected)),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    // Normal lane closed: serve any priority stragglers, then
                    // exit.
                    return match self.high_rx.try_recv() {
                        Ok(task) => Some((task, TaskOrigin::Injected)),
                        Err(_) => None,
                    };
                }
            }
        }
    }
}

impl SubmitTask for GlobalQueue {
    fn submit_task(&self, task: Task) {
        // Follow-up tasks of a running query; shutdown cannot race a running
        // query (the engine joins queries before dropping the scheduler), so
        // a failed enqueue here would be a bug — surface it loudly.
        assert!(self.enqueue(task, false), "task submitted to a shut-down GlobalQueue");
    }
}

impl Scheduler for GlobalQueue {
    fn name(&self) -> &'static str {
        "global-queue"
    }

    fn submit(&self, task: Task) -> bool {
        if self.shutdown.load(Ordering::Acquire) {
            return false;
        }
        self.enqueue(task, false)
    }

    fn run_worker(&self, worker: usize) {
        debug_assert!(worker < self.counters.len());
        let mut backoff = DeferBackoff::default();
        while let Some((task, origin)) = self.next_task() {
            if !task.handle().acquire_slot() {
                // The query already runs at its admitted DOP: push the task
                // back and look for work from other queries.
                if self.enqueue(task, true) {
                    backoff.deferred(&self.counters[worker]);
                    continue;
                } else {
                    // Queue already closed (cannot happen while queries run);
                    // nothing to do with the task.
                    return;
                }
            }
            backoff.dispatched();
            if let Some(faults) = &self.faults {
                // Chaos: stall between dequeue and dispatch (emulates OS
                // preemption at the scheduler boundary). Timing-only; the
                // stall lands in queue-wait accounting, never in results.
                let h = task.handle();
                faults.maybe_stall(h.id(), h.signals().dispatched);
            }
            let queue_wait = task.queue_wait();
            self.counters[worker].record(origin, queue_wait);
            task.dispatch(worker, origin, queue_wait, self);
        }
    }

    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Dropping the senders disconnects the channels; workers drain
        // whatever is queued and then exit.
        self.lanes.lock().take();
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            policy: self.name(),
            workers: self.counters.iter().map(WorkerCounters::snapshot).collect(),
        }
    }

    fn pending_tasks(&self) -> usize {
        self.normal_rx.len() + self.high_rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::QueryHandle;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn handle(id: u64, priority: u8, dop: usize) -> Arc<QueryHandle> {
        Arc::new(QueryHandle::new(id, priority, dop))
    }

    #[test]
    fn executes_submitted_tasks_and_counts_them() {
        let sched = Arc::new(GlobalQueue::new(2));
        let executed = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let executed = Arc::clone(&executed);
            assert!(sched.submit(Task::new(handle(i, 0, 0), move |_ctx| {
                executed.fetch_add(1, Ordering::AcqRel);
            })));
        }
        let workers: Vec<_> = (0..2)
            .map(|w| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || sched.run_worker(w))
            })
            .collect();
        while executed.load(Ordering::Acquire) < 10 {
            std::thread::yield_now();
        }
        sched.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        let stats = sched.stats();
        assert_eq!(stats.total_executed(), 10);
        assert_eq!(stats.total_injector_hits(), 10, "all global-queue hits count as injected");
        assert_eq!(stats.total_local_hits(), 0);
        assert_eq!(stats.total_steals(), 0);
        assert!(!sched.submit(Task::new(handle(99, 0, 0), |_ctx| {})), "post-shutdown submit");
    }

    #[test]
    fn follow_up_tasks_run_via_the_context() {
        let sched = Arc::new(GlobalQueue::new(1));
        let executed = Arc::new(AtomicUsize::new(0));
        let h = handle(1, 0, 0);
        let ex2 = Arc::clone(&executed);
        let h2 = Arc::clone(&h);
        assert!(sched.submit(Task::new(Arc::clone(&h), move |ctx| {
            let ex3 = Arc::clone(&ex2);
            ctx.submit(Task::new(h2, move |_ctx| {
                ex3.fetch_add(10, Ordering::AcqRel);
            }));
            ex2.fetch_add(1, Ordering::AcqRel);
        })));
        let s2 = Arc::clone(&sched);
        let worker = std::thread::spawn(move || s2.run_worker(0));
        while executed.load(Ordering::Acquire) < 11 {
            std::thread::yield_now();
        }
        sched.shutdown();
        worker.join().unwrap();
        assert_eq!(executed.load(Ordering::Acquire), 11);
    }

    #[test]
    fn priority_lane_is_served_first() {
        let sched = Arc::new(GlobalQueue::new(1));
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        // Enqueue normal tasks first, then priority tasks, before any worker
        // runs: the priority tasks must still be dispatched first.
        for i in 0..3 {
            let order = Arc::clone(&order);
            sched.submit(Task::new(handle(i, 0, 0), move |_ctx| order.lock().push(("normal", i))));
        }
        for i in 0..2 {
            let order = Arc::clone(&order);
            sched.submit(Task::new(handle(10 + i, 1, 0), move |_ctx| {
                order.lock().push(("high", i))
            }));
        }
        let s2 = Arc::clone(&sched);
        let worker = std::thread::spawn(move || s2.run_worker(0));
        while order.lock().len() < 5 {
            std::thread::yield_now();
        }
        sched.shutdown();
        worker.join().unwrap();
        let got = order.lock().clone();
        assert_eq!(got[0].0, "high");
        assert_eq!(got[1].0, "high");
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker_or_leak_its_dop_slot() {
        let sched = Arc::new(GlobalQueue::new(1));
        let h = handle(1, 0, 1); // DOP 1: a leaked slot would deadlock task 2
        let executed = Arc::new(AtomicUsize::new(0));
        sched.submit(Task::new(Arc::clone(&h), |_ctx| panic!("boom")));
        let ex = Arc::clone(&executed);
        sched.submit(Task::new(Arc::clone(&h), move |_ctx| {
            ex.fetch_add(1, Ordering::AcqRel);
        }));
        let s2 = Arc::clone(&sched);
        let worker = std::thread::spawn(move || s2.run_worker(0));
        while executed.load(Ordering::Acquire) < 1 {
            std::thread::yield_now();
        }
        sched.shutdown();
        worker.join().expect("worker survived the panicking task");
        assert_eq!(h.running(), 0, "panicking task leaked its DOP slot");
        assert_eq!(sched.stats().total_executed(), 2);
    }

    #[test]
    fn dop_cap_defers_but_eventually_runs_everything() {
        let sched = Arc::new(GlobalQueue::new(2));
        let h = handle(5, 0, 1); // at most one task of this query at a time
        let executed = Arc::new(AtomicUsize::new(0));
        let concurrent = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let executed = Arc::clone(&executed);
            let concurrent = Arc::clone(&concurrent);
            let max_seen = Arc::clone(&max_seen);
            sched.submit(Task::new(Arc::clone(&h), move |_ctx| {
                let now = concurrent.fetch_add(1, Ordering::AcqRel) + 1;
                max_seen.fetch_max(now, Ordering::AcqRel);
                std::thread::sleep(std::time::Duration::from_millis(2));
                concurrent.fetch_sub(1, Ordering::AcqRel);
                executed.fetch_add(1, Ordering::AcqRel);
            }));
        }
        let workers: Vec<_> = (0..2)
            .map(|w| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || sched.run_worker(w))
            })
            .collect();
        while executed.load(Ordering::Acquire) < 6 {
            std::thread::yield_now();
        }
        sched.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(executed.load(Ordering::Acquire), 6);
        assert_eq!(max_seen.load(Ordering::Acquire), 1, "admitted DOP 1 was exceeded");
        assert!(sched.stats().total_dop_deferrals() > 0);
    }
}
