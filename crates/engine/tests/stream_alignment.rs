//! Regression test for candidate-stream alignment under plan mutation.
//!
//! The adaptive optimizer's medium mutation may clone a position-emitting
//! consumer (a hash probe) over `SlicePart` partitions of a *candidate
//! stream* (a fetch output ordered by an oid list rather than by base-table
//! position). The seed engine forgot each partition's offset within the
//! stream: the cloned probe on partition 2 emitted outer oids starting at 0
//! instead of at the partition boundary, so downstream fetches paired rows
//! from the wrong partition — group sums silently redistributed across
//! groups (observed as a rare `ResultMismatch` on TPC-DS Q42-shape queries,
//! reachable only through contention-skewed mutation sequences).
//!
//! The fix threads a `stream_base` through `Chunk::Oids` / `Chunk::Join` and
//! into fetch outputs' base oids. This test executes the exact pre-/post-
//! mutation plan shapes deterministically and asserts identical results.

use std::sync::Arc;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, TableBuilder};
use apq_engine::plan::{JoinSide, OperatorSpec, Plan};
use apq_engine::{Engine, QueryOutput};
use apq_operators::{AggFunc, CmpOp, Predicate};

/// Catalog with a fact table whose `fk` joins a small dimension, plus a
/// per-row measure and group key.
fn catalog(rows: usize) -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("fact")
            .i64_column("fk", (0..rows as i64).map(|v| (v * 13) % 50).collect())
            .i64_column("measure", (0..rows as i64).map(|v| v % 1000).collect())
            .i64_column("grp", (0..rows as i64).map(|v| (v * 7) % 5).collect())
            .build()
            .unwrap(),
    );
    c.register(
        TableBuilder::new("dim")
            .i64_column("key", (0..20).collect()) // matches fk values 0..20
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

/// Plan mirroring the fatal TPC-DS shape. `split` controls the mutated
/// variant: `None` probes the whole candidate stream through one join;
/// `Some(k)` clones the probe over the stream sliced at `k` (what the medium
/// mutation produces), unioning the per-partition join results.
fn probe_over_stream_plan(rows: usize, selected_max: i64, split: Option<usize>) -> Plan {
    let mut p = Plan::new();
    let full = RowRange::new(0, rows);
    let scan = |col: &str| OperatorSpec::ScanColumn {
        table: "fact".into(),
        column: col.into(),
        range: full,
    };

    // Candidate stream: rows with grp < selected_max, in base order.
    let grp = p.add(scan("grp"), vec![]);
    let cands = p.add(
        OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, selected_max) },
        vec![grp],
    );

    // Streams fetched through the candidate list (positionally aligned).
    let fk_col = p.add(scan("fk"), vec![]);
    let measure_col = p.add(scan("measure"), vec![]);
    let measure_stream = p.add(OperatorSpec::Fetch, vec![cands, measure_col]);
    let grp_stream = p.add(OperatorSpec::Fetch, vec![cands, grp]);

    // Dimension hash.
    let dim_key = p.add(
        OperatorSpec::ScanColumn {
            table: "dim".into(),
            column: "key".into(),
            range: RowRange::new(0, 20),
        },
        vec![],
    );
    let hash = p.add(OperatorSpec::HashBuild, vec![dim_key]);

    // Probe the fk stream — whole, or cloned over two partitions of the
    // *candidate list* (the exact shape the medium mutation produces: the
    // oid list is sliced first, each partition fetched separately, and the
    // probe cloned per partition).
    let join_union = match split {
        None => {
            let fk_stream = p.add(OperatorSpec::Fetch, vec![cands, fk_col]);
            p.add(OperatorSpec::HashProbe, vec![fk_stream, hash])
        }
        Some(k) => {
            let cands1 = p.add(OperatorSpec::SlicePart { start: 0, len: k }, vec![cands]);
            let cands2 = p.add(OperatorSpec::SlicePart { start: k, len: rows }, vec![cands]);
            let fk1 = p.add(OperatorSpec::Fetch, vec![cands1, fk_col]);
            let fk2 = p.add(OperatorSpec::Fetch, vec![cands2, fk_col]);
            let j1 = p.add(OperatorSpec::HashProbe, vec![fk1, hash]);
            let j2 = p.add(OperatorSpec::HashProbe, vec![fk2, hash]);
            p.add(OperatorSpec::ExchangeUnion, vec![j1, j2])
        }
    };

    // Surviving stream positions → pair group keys with measures.
    let outer = p.add(OperatorSpec::ProjectJoinSide { side: JoinSide::Outer }, vec![join_union]);
    let grp_j = p.add(OperatorSpec::Fetch, vec![outer, grp_stream]);
    let measure_j = p.add(OperatorSpec::Fetch, vec![outer, measure_stream]);
    let grouped = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![grp_j, measure_j]);
    let merged = p.add(OperatorSpec::MergeGrouped, vec![grouped]);
    p.set_root(merged);
    p
}

#[test]
fn probe_cloned_over_stream_partitions_matches_the_unsplit_plan() {
    let rows = 4_000;
    let cat = catalog(rows);
    let engine = Engine::with_workers(3);

    let whole = probe_over_stream_plan(rows, 4, None);
    let expected = engine.execute(&whole, &cat).expect("unsplit plan executes").output;
    assert!(matches!(expected, QueryOutput::Groups(ref g) if !g.is_empty()));

    // Several cut points, including lopsided ones.
    for k in [1, 7, 100, 1_000, 2_000] {
        let split = probe_over_stream_plan(rows, 4, Some(k));
        split.validate().expect("split plan is valid");
        let out = engine.execute(&split, &cat).expect("split plan executes").output;
        assert_eq!(
            out, expected,
            "probe cloned over stream partitions (cut at {k}) redistributed rows"
        );
    }
}

#[test]
fn sliced_join_results_keep_their_stream_offset() {
    // The same invariant one level up: slicing a *join result* and projecting
    // its sides must agree with projecting the whole result.
    let rows = 2_000;
    let cat = catalog(rows);
    let engine = Engine::with_workers(2);

    let mut whole = Plan::new();
    let full = RowRange::new(0, rows);
    let fk = whole.add(
        OperatorSpec::ScanColumn { table: "fact".into(), column: "fk".into(), range: full },
        vec![],
    );
    let dim = whole.add(
        OperatorSpec::ScanColumn {
            table: "dim".into(),
            column: "key".into(),
            range: RowRange::new(0, 20),
        },
        vec![],
    );
    let hash = whole.add(OperatorSpec::HashBuild, vec![dim]);
    let join = whole.add(OperatorSpec::HashProbe, vec![fk, hash]);
    let outer = whole.add(OperatorSpec::ProjectJoinSide { side: JoinSide::Outer }, vec![join]);
    let measure = whole.add(
        OperatorSpec::ScanColumn { table: "fact".into(), column: "measure".into(), range: full },
        vec![],
    );
    let fetched = whole.add(OperatorSpec::Fetch, vec![outer, measure]);
    let agg = whole.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetched]);
    let fin = whole.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    whole.set_root(fin);
    let expected = engine.execute(&whole, &cat).expect("whole executes").output;

    // Same pipeline, but the join result is sliced into two windows whose
    // projections are fetched and summed independently.
    let mut split = Plan::new();
    let fk = split.add(
        OperatorSpec::ScanColumn { table: "fact".into(), column: "fk".into(), range: full },
        vec![],
    );
    let dim = split.add(
        OperatorSpec::ScanColumn {
            table: "dim".into(),
            column: "key".into(),
            range: RowRange::new(0, 20),
        },
        vec![],
    );
    let hash = split.add(OperatorSpec::HashBuild, vec![dim]);
    let join = split.add(OperatorSpec::HashProbe, vec![fk, hash]);
    let measure = split.add(
        OperatorSpec::ScanColumn { table: "fact".into(), column: "measure".into(), range: full },
        vec![],
    );
    let mut partials = Vec::new();
    for (start, len) in [(0, 123), (123, rows)] {
        let window = split.add(OperatorSpec::SlicePart { start, len }, vec![join]);
        let outer =
            split.add(OperatorSpec::ProjectJoinSide { side: JoinSide::Outer }, vec![window]);
        let fetched = split.add(OperatorSpec::Fetch, vec![outer, measure]);
        partials.push(split.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetched]));
    }
    let fin = split.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, partials);
    split.set_root(fin);
    split.validate().expect("split plan is valid");

    let out = engine.execute(&split, &cat).expect("split executes").output;
    assert_eq!(out, expected, "sliced join windows lost their stream offsets");
}
