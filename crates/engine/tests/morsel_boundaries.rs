//! Morsel-boundary regression tests.
//!
//! Morsel-driven execution cuts pipeline inputs at fixed row counts, so the
//! dangerous inputs are the ones whose sizes do *not* divide evenly: the
//! last morsel is short, single-morsel pipelines take the no-slice fast
//! path, and stream partitions (`SlicePart`) start at offsets that are not
//! multiples of the morsel size. Every case must produce byte-identical
//! results to operator-at-a-time execution — including the `stream_base`
//! candidate-stream alignment invariant fixed in PR 1: a pipeline fusing
//! `fetch → probe` over a partition of a candidate stream must label its
//! outputs with absolute stream positions, not morsel-local ones.

use std::sync::Arc;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, TableBuilder};
use apq_engine::plan::{JoinSide, OperatorSpec, Plan};
use apq_engine::{Engine, EngineConfig, ExecutionMode, QueryOutput, SchedulerPolicy};
use apq_operators::{AggFunc, CmpOp, Predicate};

fn catalog(rows: usize) -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("fact")
            .i64_column("fk", (0..rows as i64).map(|v| (v * 13) % 50).collect())
            .i64_column("measure", (0..rows as i64).map(|v| v % 1000).collect())
            .i64_column("grp", (0..rows as i64).map(|v| (v * 7) % 5).collect())
            .build()
            .unwrap(),
    );
    c.register(TableBuilder::new("dim").i64_column("key", (0..20).collect()).build().unwrap());
    Arc::new(c)
}

fn morsel_engine(policy: SchedulerPolicy, morsel_rows: usize) -> Engine {
    Engine::new(
        EngineConfig::with_workers(3)
            .with_scheduler(policy)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(morsel_rows),
    )
}

/// Select → fetch → group-sum over the fact table.
fn grouped_sum_plan(rows: usize) -> Plan {
    let mut p = Plan::new();
    let full = RowRange::new(0, rows);
    let scan = |col: &str| OperatorSpec::ScanColumn {
        table: "fact".into(),
        column: col.into(),
        range: full,
    };
    let grp = p.add(scan("grp"), vec![]);
    let cands =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 4i64) }, vec![grp]);
    let measure = p.add(scan("measure"), vec![]);
    let fetched_measure = p.add(OperatorSpec::Fetch, vec![cands, measure]);
    let fetched_grp = p.add(OperatorSpec::Fetch, vec![cands, grp]);
    let grouped =
        p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![fetched_grp, fetched_measure]);
    let merged = p.add(OperatorSpec::MergeGrouped, vec![grouped]);
    p.set_root(merged);
    p
}

/// The PR-1 stream-alignment shape: a hash probe cloned over `SlicePart`
/// partitions of a candidate stream, cut at `k`.
fn probe_over_stream_plan(rows: usize, split: Option<usize>) -> Plan {
    let mut p = Plan::new();
    let full = RowRange::new(0, rows);
    let scan = |col: &str| OperatorSpec::ScanColumn {
        table: "fact".into(),
        column: col.into(),
        range: full,
    };

    let grp = p.add(scan("grp"), vec![]);
    let cands =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 4i64) }, vec![grp]);
    let fk_col = p.add(scan("fk"), vec![]);
    let measure_col = p.add(scan("measure"), vec![]);
    let measure_stream = p.add(OperatorSpec::Fetch, vec![cands, measure_col]);
    let grp_stream = p.add(OperatorSpec::Fetch, vec![cands, grp]);

    let dim_key = p.add(
        OperatorSpec::ScanColumn {
            table: "dim".into(),
            column: "key".into(),
            range: RowRange::new(0, 20),
        },
        vec![],
    );
    let hash = p.add(OperatorSpec::HashBuild, vec![dim_key]);

    let join_union = match split {
        None => {
            let fk_stream = p.add(OperatorSpec::Fetch, vec![cands, fk_col]);
            p.add(OperatorSpec::HashProbe, vec![fk_stream, hash])
        }
        Some(k) => {
            let cands1 = p.add(OperatorSpec::SlicePart { start: 0, len: k }, vec![cands]);
            let cands2 = p.add(OperatorSpec::SlicePart { start: k, len: rows }, vec![cands]);
            let fk1 = p.add(OperatorSpec::Fetch, vec![cands1, fk_col]);
            let fk2 = p.add(OperatorSpec::Fetch, vec![cands2, fk_col]);
            let j1 = p.add(OperatorSpec::HashProbe, vec![fk1, hash]);
            let j2 = p.add(OperatorSpec::HashProbe, vec![fk2, hash]);
            p.add(OperatorSpec::ExchangeUnion, vec![j1, j2])
        }
    };

    let outer = p.add(OperatorSpec::ProjectJoinSide { side: JoinSide::Outer }, vec![join_union]);
    let grp_j = p.add(OperatorSpec::Fetch, vec![outer, grp_stream]);
    let measure_j = p.add(OperatorSpec::Fetch, vec![outer, measure_stream]);
    let grouped = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![grp_j, measure_j]);
    let merged = p.add(OperatorSpec::MergeGrouped, vec![grouped]);
    p.set_root(merged);
    p
}

#[test]
fn non_divisible_morsel_sizes_match_operator_at_a_time() {
    // 4_001 rows is prime-ish on purpose: no morsel size below divides it.
    let rows = 4_001;
    let cat = catalog(rows);
    let plan = grouped_sum_plan(rows);
    let expected = Engine::with_workers(3).execute(&plan, &cat).unwrap().output;
    assert!(matches!(expected, QueryOutput::Groups(ref g) if !g.is_empty()));

    for policy in SchedulerPolicy::ALL {
        for morsel_rows in [7, 13, 100, 1_000, 3_999, 4_001, 1 << 20] {
            let engine = morsel_engine(policy, morsel_rows);
            let exec = engine.execute(&plan, &cat).unwrap();
            assert_eq!(
                exec.output, expected,
                "{policy}, morsel_rows {morsel_rows}: morsel mode diverged"
            );
            // The fan-out covered every source row.
            for pipeline in &exec.profile.pipelines {
                assert_eq!(
                    pipeline.n_morsels,
                    pipeline.source_rows.div_ceil(morsel_rows).max(1),
                    "{policy}, morsel_rows {morsel_rows}: wrong fan-out"
                );
            }
        }
    }
}

#[test]
fn stream_partitions_keep_alignment_under_morsel_execution() {
    // SlicePart partitions of a candidate stream start at offsets that are
    // not multiples of the morsel size; the fused fetch → probe chains over
    // each partition must emit absolute stream positions (stream_base).
    let rows = 4_000;
    let cat = catalog(rows);
    let whole = probe_over_stream_plan(rows, None);
    let expected = Engine::with_workers(3).execute(&whole, &cat).unwrap().output;

    for policy in SchedulerPolicy::ALL {
        for (cut, morsel_rows) in [(1, 100), (7, 64), (100, 77), (1_000, 512), (2_000, 4_096)] {
            let split = probe_over_stream_plan(rows, Some(cut));
            let engine = morsel_engine(policy, morsel_rows);
            let out = engine.execute(&split, &cat).unwrap().output;
            assert_eq!(
                out, expected,
                "{policy}: probe over stream cut at {cut} (morsels of {morsel_rows}) \
                 redistributed rows"
            );
            // The unsplit plan must agree too.
            let out = engine.execute(&whole, &cat).unwrap().output;
            assert_eq!(out, expected, "{policy}: unsplit plan diverged under morsels");
        }
    }
}

#[test]
fn position_emitters_after_in_pipeline_selections_stay_global() {
    // Regression: scan → select → fetch → semijoin. The select compacts each
    // morsel into a fresh candidate stream, so a semijoin fused behind it
    // would emit positions wrapping back to 0 at every morsel boundary.
    // The analysis must split the chain so the semijoin runs over the
    // globally assembled stream, and the output must match
    // operator-at-a-time exactly.
    let rows = 4_000;
    let cat = catalog(rows);
    let mut p = Plan::new();
    let grp = p.add(
        OperatorSpec::ScanColumn {
            table: "fact".into(),
            column: "grp".into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    );
    let sel = p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 4i64) }, vec![grp]);
    let fk = p.add(
        OperatorSpec::ScanColumn {
            table: "fact".into(),
            column: "fk".into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    );
    let fetched = p.add(OperatorSpec::Fetch, vec![sel, fk]);
    let dim = p.add(
        OperatorSpec::ScanColumn {
            table: "dim".into(),
            column: "key".into(),
            range: RowRange::new(0, 20),
        },
        vec![],
    );
    let hash = p.add(OperatorSpec::HashBuild, vec![dim]);
    let semi = p.add(OperatorSpec::SemiJoin, vec![fetched, hash]);
    p.set_root(semi);

    let expected = Engine::with_workers(3).execute(&p, &cat).unwrap().output;
    let QueryOutput::Oids(ref oids) = expected else { panic!("semijoin returns oids") };
    assert!(!oids.is_empty());
    // Sanity: positions are a strictly increasing global sequence.
    assert!(oids.windows(2).all(|w| w[0] < w[1]), "reference positions not global");

    for policy in SchedulerPolicy::ALL {
        for morsel_rows in [100, 500, 777, 4_096] {
            let engine = morsel_engine(policy, morsel_rows);
            let out = engine.execute(&p, &cat).unwrap().output;
            assert_eq!(
                out, expected,
                "{policy}, morsel_rows {morsel_rows}: semijoin after in-pipeline select \
                 emitted morsel-local positions"
            );
        }
    }
}

#[test]
fn tiny_and_empty_inputs_execute_as_single_morsels() {
    let cat = catalog(10);
    for policy in SchedulerPolicy::ALL {
        let engine = morsel_engine(policy, 1 << 16);
        // Input much smaller than a morsel.
        let plan = grouped_sum_plan(10);
        let expected = Engine::with_workers(2).execute(&plan, &cat).unwrap().output;
        let exec = engine.execute(&plan, &cat).unwrap();
        assert_eq!(exec.output, expected);
        assert!(exec.profile.pipelines.iter().all(|p| p.n_morsels == 1));

        // A selection that keeps nothing: empty streams still flow through.
        let mut p = Plan::new();
        let grp = p.add(
            OperatorSpec::ScanColumn {
                table: "fact".into(),
                column: "grp".into(),
                range: RowRange::new(0, 10),
            },
            vec![],
        );
        let none =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, -1i64) }, vec![grp]);
        let fetched = p.add(OperatorSpec::Fetch, vec![none, grp]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Count }, vec![fetched]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Count }, vec![agg]);
        p.set_root(fin);
        let expected = Engine::with_workers(2).execute(&p, &cat).unwrap().output;
        assert_eq!(engine.execute(&p, &cat).unwrap().output, expected);
    }
}
