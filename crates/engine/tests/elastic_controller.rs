//! Elastic resource controller: mid-flight DOP re-grant behavior and its
//! race conditions.
//!
//! The controller acts on live [`apq_engine::QueryHandle`]s while their
//! queries execute, so every lever action can race query completion,
//! cancellation, and the query's own dispatch. These tests pin the required
//! outcomes deterministically:
//!
//! * a re-grant landing on a completing/completed query is harmless;
//! * a re-grant during cancellation does not resurrect the query;
//! * a claw-back below the number of currently running tasks drains
//!   gracefully (no pre-emption, no deadlock, correct results);
//! * with the controller enabled and half the clients finishing early, a
//!   surviving throttled query's admitted-DOP timeline records an increase
//!   (the fig. 16/19 elasticity the paper benchmarks against) — asserted
//!   with real hardware parallelism in the thread-overlap variant, and
//!   deterministically on any machine (1-core CI included) in the
//!   census-reservation variant driven by forced
//!   [`Engine::controller_tick`] rounds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, ScalarValue, TableBuilder};
use apq_engine::controller::ControllerConfig;
use apq_engine::plan::{OperatorSpec, Plan};
use apq_engine::{
    DopPhase, Engine, EngineConfig, EngineError, ExecutionMode, QueryOptions, QueryOutput,
    SchedulerPolicy,
};
use apq_operators::{AggFunc, CmpOp, Predicate};

fn catalog(rows: usize) -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("a", (0..rows as i64).collect())
            .i64_column("b", (0..rows as i64).map(|v| v * 2).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

fn scan(col: &str, lo: usize, hi: usize) -> OperatorSpec {
    OperatorSpec::ScanColumn { table: "t".into(), column: col.into(), range: RowRange::new(lo, hi) }
}

/// `partitions`-way parallel sum(b) where a < threshold — every partition is
/// an independent scan→select→fetch→agg branch, so the query keeps many
/// tasks runnable at once (the shape claw-backs must drain).
fn partitioned_plan(rows: usize, threshold: i64, partitions: usize) -> Plan {
    let mut p = Plan::new();
    let b = p.add(scan("b", 0, rows), vec![]);
    let mut partials = Vec::new();
    let step = rows.div_ceil(partitions);
    for part in 0..partitions {
        let lo = part * step;
        let hi = ((part + 1) * step).min(rows);
        let a = p.add(scan("a", lo, hi), vec![]);
        let sel = p
            .add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        partials.push(p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]));
    }
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, partials);
    p.set_root(fin);
    p
}

fn expected_sum(threshold: i64) -> QueryOutput {
    QueryOutput::Scalar(ScalarValue::I64((0..threshold).map(|v| v * 2).sum()))
}

/// A long-dormant background thread: all ticks in these tests are driven
/// synchronously for determinism.
fn manual_controller() -> ControllerConfig {
    ControllerConfig::default().with_tick(Duration::from_secs(3_600))
}

/// Asserts that the query's execution slots drain to zero. The completing
/// task wakes the client from *inside* its closure and releases its slot
/// just after, so an instantaneous check after `execute` returns can
/// legitimately still see one slot held — drain, don't snapshot.
fn assert_slots_drain(handle: &apq_engine::QueryHandle, context: &str) {
    for _ in 0..1_000_000 {
        if handle.running() == 0 {
            return;
        }
        std::thread::yield_now();
    }
    panic!("{context}: execution slots never drained (running = {})", handle.running());
}

#[test]
fn regrant_racing_query_completion_is_harmless() {
    let engine =
        Arc::new(Engine::new(EngineConfig::with_workers(2).with_controller(manual_controller())));
    let cat = catalog(50_000);
    let plan = Arc::new(partitioned_plan(50_000, 1_000, 8));
    let handle = engine.register_query(QueryOptions::with_admitted_dop(1));

    // Hammer re-grants from a sibling thread for the query's whole life —
    // and beyond it (the controller may hold a completed query's handle).
    let stop = Arc::new(AtomicBool::new(false));
    let regranter = {
        let handle = Arc::clone(&handle);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut dop = 1;
            while !stop.load(Ordering::Acquire) {
                dop = if dop == 1 { 2 } else { 1 };
                handle.set_admitted_dop(dop);
                std::thread::yield_now();
            }
        })
    };
    let exec = engine.execute_with_handle(&plan, &cat, Arc::clone(&handle)).unwrap();
    // Late re-grants after completion write to a handle nobody dispatches
    // from anymore; explicitly exercise that window before stopping.
    handle.set_admitted_dop(4);
    handle.set_admitted_dop(1);
    stop.store(true, Ordering::Release);
    regranter.join().unwrap();

    assert_eq!(exec.output, expected_sum(1_000));
    assert_slots_drain(&handle, "racing re-grants");
    assert!(exec.profile.dop_timeline.len() >= 2, "re-grants were not recorded");
    // The engine stays healthy for the next client.
    let again = engine.execute_shared(&plan, &cat).unwrap();
    assert_eq!(again.output, exec.output);
}

#[test]
fn regrant_during_cancellation_does_not_resurrect_the_query() {
    for policy in SchedulerPolicy::ALL {
        let engine = Arc::new(Engine::new(
            EngineConfig::with_workers(2)
                .with_scheduler(policy)
                .with_controller(manual_controller()),
        ));
        let cat = catalog(10_000);
        let plan = Arc::new(partitioned_plan(10_000, 100, 4));

        // Cancelled before submission: a re-grant between cancel and execute
        // must not bring it back.
        let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
        handle.cancel();
        handle.set_admitted_dop(4); // the controller racing the cancel
        let err = engine.execute_with_handle(&plan, &cat, Arc::clone(&handle)).unwrap_err();
        assert_eq!(err, EngineError::Cancelled, "{policy}");
        assert_slots_drain(&handle, "cancel before submission");

        // Cancelled mid-flight while a sibling thread re-grants: the query
        // either finished first (Ok) or observed the cancel (Cancelled);
        // nothing else, and the engine survives either way.
        let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
        let runner = {
            let engine = Arc::clone(&engine);
            let plan = Arc::clone(&plan);
            let cat = Arc::clone(&cat);
            let handle = Arc::clone(&handle);
            std::thread::spawn(move || engine.execute_with_handle(&plan, &cat, handle))
        };
        handle.set_admitted_dop(2);
        handle.cancel();
        handle.set_admitted_dop(4);
        match runner.join().unwrap() {
            Ok(exec) => assert_eq!(exec.output, expected_sum(100), "{policy}"),
            Err(err) => assert_eq!(err, EngineError::Cancelled, "{policy}"),
        }
        assert_slots_drain(&handle, "cancel race");
        let ok = engine.execute_shared(&plan, &cat).unwrap();
        assert_eq!(ok.output, expected_sum(100), "{policy}: engine unhealthy after cancel race");
    }
}

#[test]
fn clawback_below_running_task_count_drains_gracefully() {
    for policy in SchedulerPolicy::ALL {
        for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
            let engine = Arc::new(Engine::new(
                EngineConfig::with_workers(4)
                    .with_scheduler(policy)
                    .with_execution_mode(mode)
                    .with_morsel_rows(2_048)
                    .with_controller(manual_controller()),
            ));
            let cat = catalog(100_000);
            let plan = Arc::new(partitioned_plan(100_000, 2_000, 8));

            // Admit wide, then claw back to 1 while (potentially many) tasks
            // are already running. The cap is only consulted at slot
            // acquisition, so running tasks finish and the rest trickle
            // through one at a time — completion, not pre-emption.
            let handle = engine.register_query(QueryOptions::with_admitted_dop(4));
            let runner = {
                let engine = Arc::clone(&engine);
                let plan = Arc::clone(&plan);
                let cat = Arc::clone(&cat);
                let handle = Arc::clone(&handle);
                std::thread::spawn(move || engine.execute_with_handle(&plan, &cat, handle))
            };
            handle.set_admitted_dop(1);
            let exec = runner.join().unwrap().unwrap();
            assert_eq!(exec.output, expected_sum(2_000), "{policy}/{mode}: claw-back corrupted");
            assert_slots_drain(&handle, "claw-back");
            assert_eq!(handle.admitted_dop(), 1, "{policy}/{mode}: claw-back lost");
        }
    }
}

#[test]
fn controller_disabled_takes_no_actions_and_preserves_grants() {
    let engine = Engine::new(EngineConfig::with_workers(4));
    let cat = catalog(10_000);
    let plan = Arc::new(partitioned_plan(10_000, 500, 4));
    let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
    let report = engine.controller_tick();
    assert_eq!(report.actions(), 0);
    assert_eq!(report.governed, 0, "disabled controller reports an empty tick");
    let exec = engine.execute_with_handle(&plan, &cat, Arc::clone(&handle)).unwrap();
    assert_eq!(exec.output, expected_sum(500));
    assert_eq!(handle.admitted_dop(), 1, "grant must stay exactly as submitted");
    assert_eq!(exec.profile.dop_timeline.len(), 1, "no re-grants without a controller");
    assert!(!exec.profile.dop_was_regranted());
}

#[test]
fn adaptive_morsel_hint_is_resolved_per_pipeline_launch() {
    let engine = Engine::new(
        EngineConfig::with_workers(2)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(4_096)
            .with_controller(manual_controller()),
    );
    let cat = catalog(16_384);
    let plan = Arc::new(partitioned_plan(16_384, 300, 1));

    // Static default first.
    let base = engine.execute_shared(&plan, &cat).unwrap();
    assert!(base.profile.morsel_sizes().iter().all(|&m| m == 4_096));

    // A per-query override (what the controller writes) takes effect at the
    // next pipeline launch and is recorded in the profile.
    let handle = engine.register_query(QueryOptions::default());
    handle.set_morsel_rows(1_024);
    let exec = engine.execute_with_handle(&plan, &cat, Arc::clone(&handle)).unwrap();
    assert_eq!(exec.output, base.output, "morsel size must never change results");
    assert!(
        exec.profile.morsel_sizes().iter().all(|&m| m == 1_024),
        "override ignored: {:?}",
        exec.profile.morsel_sizes()
    );
    assert!(exec.profile.total_morsels() > base.profile.total_morsels());

    // Clearing the hint returns to the engine default.
    handle.set_morsel_rows(0);
    assert_eq!(handle.morsel_rows_hint(), None);
}

/// Deterministic variant of the half-clients-leave scenario below, runnable
/// on 1-core CI: census reservations ([`Engine::reserve_query`]) make
/// clients visible to controller ticks *without* overlapping execution, so
/// the whole arrive → equalize → depart → re-grant sequence can be driven
/// synchronously with forced [`Engine::controller_tick`] rounds — no
/// threads, no hardware-parallelism gate, no flakiness window.
#[test]
fn surviving_reservations_are_regranted_deterministically_via_forced_ticks() {
    let engine = Engine::new(
        EngineConfig::with_workers(4)
            .with_controller(manual_controller().with_adaptive_morsels(false)),
    );
    let cat = catalog(10_000);
    let plan = Arc::new(partitioned_plan(10_000, 500, 4));

    // Four clients arrive, all admitted throttled to DOP 1 (a saturated
    // admission layer), none submitted yet — reservations alone put them
    // in the census.
    let mut reservations: Vec<_> =
        (0..4).map(|_| engine.reserve_query(QueryOptions::with_admitted_dop(1))).collect();
    assert_eq!(engine.active_queries().len(), 4);

    // Equal shares already held (4 workers / 4 clients = 1): the tick is a
    // no-op, deterministically.
    let report = engine.controller_tick();
    assert_eq!(report.governed, 4);
    assert_eq!(report.dop_changes, 0);

    // Half the clients leave (dropping the reservation is the departure).
    let departed: Vec<_> = reservations.split_off(2);
    drop(departed);
    assert_eq!(engine.active_queries().len(), 2);

    // The next tick re-grants the survivors to share 2 — before they have
    // submitted anything, which is exactly what the old double census
    // could not do (ticket holders were invisible to ticks).
    let report = engine.controller_tick();
    assert_eq!(report.governed, 2);
    assert_eq!(report.dop_changes, 2);
    for reservation in &reservations {
        assert_eq!(reservation.handle().admitted_dop(), 2);
    }

    // The survivors execute under the re-granted share; the profile records
    // the full reservation lifecycle: Reserve(1) → Regrant(2) → Submit(2).
    for reservation in &reservations {
        let exec = engine.execute_with_handle(&plan, &cat, reservation.handle()).unwrap();
        assert_eq!(exec.output, expected_sum(500));
        assert!(
            exec.profile.dop_was_regranted(),
            "re-grant missing from timeline: {:?}",
            exec.profile.dop_timeline
        );
        let phases: Vec<DopPhase> = exec.profile.dop_timeline.iter().map(|e| e.phase).collect();
        assert_eq!(phases, vec![DopPhase::Reserve, DopPhase::Regrant, DopPhase::Submit]);
        assert_eq!(exec.profile.dop_timeline.last().unwrap().dop, 2);
    }
    assert!(engine.controller_tick().dop_changes <= 2, "ticks stay idempotent");
}

/// The headline acceptance behavior: a concurrent workload in which half
/// the clients finish early must leave at least one surviving query with a
/// recorded admitted-DOP increase after admit. Requires real hardware
/// parallelism (on 1-core machines the pool cannot overlap clients); see
/// `surviving_reservations_are_regranted_deterministically_via_forced_ticks`
/// for the machine-independent variant.
#[test]
fn surviving_queries_are_regranted_when_half_the_clients_finish() {
    if std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) <= 1 {
        eprintln!("skipping: needs available_parallelism() > 1");
        return;
    }
    let engine =
        Arc::new(Engine::new(EngineConfig::with_workers(4).with_controller(manual_controller())));
    let cat = catalog(400_000);
    // Two short-lived clients, two heavy survivors (~40× the work), all
    // admitted throttled to DOP 1 (a saturated admission controller).
    let short_plan = Arc::new(partitioned_plan(10_000, 100, 4));
    let long_plan = Arc::new(partitioned_plan(400_000, 8_000, 16));

    let mut shorts = Vec::new();
    let mut longs = Vec::new();
    let mut long_handles = Vec::new();
    for _ in 0..2 {
        let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
        long_handles.push(Arc::clone(&handle));
        let engine = Arc::clone(&engine);
        let plan = Arc::clone(&long_plan);
        let cat = Arc::clone(&cat);
        longs.push(std::thread::spawn(move || engine.execute_with_handle(&plan, &cat, handle)));
    }
    for _ in 0..2 {
        let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
        let engine = Arc::clone(&engine);
        let plan = Arc::clone(&short_plan);
        let cat = Arc::clone(&cat);
        shorts.push(std::thread::spawn(move || engine.execute_with_handle(&plan, &cat, handle)));
    }

    // Tick while everyone runs (equal shares: 4 workers / 4 clients = 1, so
    // nothing changes), then let the short clients finish.
    engine.controller_tick();
    for t in shorts {
        assert_eq!(t.join().unwrap().unwrap().output, expected_sum(100));
    }
    // Half the clients are gone: ticks now re-grant the survivors' share
    // (4 workers / 2 governed = 2). Keep ticking until a survivor picks the
    // raise up or both finish.
    while engine.in_flight_queries() > 0 {
        engine.controller_tick();
        std::thread::yield_now();
    }
    let execs: Vec<_> = longs.into_iter().map(|t| t.join().unwrap().unwrap()).collect();
    for exec in &execs {
        assert_eq!(exec.output, expected_sum(8_000));
    }
    assert!(
        execs.iter().any(|e| e.profile.dop_was_regranted()),
        "no surviving query recorded a DOP increase after the peers left: {:?}",
        execs.iter().map(|e| e.profile.dop_timeline.clone()).collect::<Vec<_>>()
    );
    for handle in &long_handles {
        assert!(handle.admitted_dop() >= 1);
    }
}
