//! Property tests for the lazily-typed caches on shared column blocks:
//! random `build` / `slice` / `concat` / typed-access interleavings —
//! including concurrent typed access from several threads over windows of
//! one backing — must match a materializing reference exactly (values and
//! `base_oid` labels), and each backing must validate at most **once per
//! type** no matter how many clones, windows, or threads touched it.
//!
//! The reference keeps a plain `Vec` plus an explicit base label and
//! re-slices on every cut (what a cache-less column would return); the
//! engine path goes through `Column::slice` / `Column::concat` and the
//! warm-first typed accessors, exercising the `OnceLock` publication race
//! and the per-backing validation counter.

use apq_columnar::{Column, Oid};
use proptest::prelude::*;

/// Materializing reference: owned values + the base-oid label the view
/// should carry.
#[derive(Debug, Clone, PartialEq)]
struct RefCol {
    values: Vec<i64>,
    base: Oid,
}

impl RefCol {
    fn slice(&self, start: usize, len: usize) -> RefCol {
        RefCol { values: self.values[start..start + len].to_vec(), base: self.base + start as Oid }
    }

    fn concat(parts: &[RefCol]) -> RefCol {
        // `Column::concat` packs into fresh backing labelled from zero.
        RefCol { values: parts.iter().flat_map(|p| p.values.iter().copied()).collect(), base: 0 }
    }
}

fn assert_matches(col: &Column, reference: &RefCol) {
    assert_eq!(col.i64_values().unwrap(), &reference.values[..], "typed window values diverged");
    assert_eq!(col.base_oid(), reference.base, "base_oid label diverged");
    assert_eq!(col.len(), reference.values.len());
}

/// Reads `col` through several threads at once, each over a different
/// window of the same backing, racing the first validation when the
/// backing is cold. Values must match the reference everywhere and the
/// backing must end up validated exactly once (a single type was read).
fn concurrent_fanout(col: &Column, reference: &RefCol, threads: usize) {
    let rows = col.len();
    std::thread::scope(|s| {
        for t in 0..threads {
            let col = col.clone();
            let reference = reference.clone();
            s.spawn(move || {
                // Deterministic per-thread window; always in range.
                let start = if rows == 0 { 0 } else { (t * 31) % rows };
                let len = (rows - start) / (t + 1);
                let window = col.slice(start, len).expect("in-range window");
                assert_matches(&window, &reference.slice(start, len));
                // The base view itself, after the window warmed the cache.
                assert_matches(&col, &reference);
            });
        }
    });
    assert_eq!(
        col.backing_validations(),
        1,
        "one typed access pattern must validate the backing exactly once"
    );
}

/// Drives one random op sequence, starting from a freshly built column.
fn drive(len: usize, ops: &[(usize, usize, usize, usize)]) {
    let mut col = Column::from_i64((0..len as i64).map(|v| v.wrapping_mul(7) - 3).collect());
    let mut reference =
        RefCol { values: (0..len as i64).map(|v| v.wrapping_mul(7) - 3).collect(), base: 0 };
    assert_eq!(col.backing_validations(), 0, "a fresh backing must start cold");

    for &(kind, a, b, threads) in ops {
        let rows = col.len();
        match kind {
            // Nested zero-copy cut; the window inherits the warm cache of
            // its backing (shares_storage_with stays true).
            0 => {
                let start = if rows == 0 { 0 } else { a % (rows + 1) };
                let cut = b % (rows - start + 1);
                let sliced = col.slice(start, cut).expect("in-range slice");
                assert!(sliced.shares_storage_with(&col), "slice must not copy");
                reference = reference.slice(start, cut);
                col = sliced;
            }
            // Morsel-grid split + concat: non-divisible morsel sizes, packed
            // in order into fresh (cold) backing relabelled from zero.
            1 => {
                let morsel = (a % (rows + 2)).max(1);
                let n = rows.div_ceil(morsel).max(1);
                let parts: Vec<Column> = (0..n)
                    .map(|i| {
                        let start = i * morsel;
                        col.slice(start, morsel.min(rows - start)).expect("grid part")
                    })
                    .collect();
                let ref_parts: Vec<RefCol> = (0..n)
                    .map(|i| {
                        let start = i * morsel;
                        reference.slice(start, morsel.min(rows - start))
                    })
                    .collect();
                col = Column::concat(&parts).expect("concat");
                reference = RefCol::concat(&ref_parts);
                assert_eq!(col.backing_validations(), 0, "packed backing must start cold");
            }
            // Concurrent typed access across threads (cold → races the
            // publication; warm → every thread takes the pointer-load path).
            _ => concurrent_fanout(&col, &reference, threads.max(1)),
        }
        assert_matches(&col, &reference);
        // However the ops interleaved, only i64 was ever read: the current
        // backing can never have validated more than that one type.
        assert!(
            col.backing_validations() <= 1,
            "backing validated {} times for one accessed type",
            col.backing_validations()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn typed_access_matches_materializing_reference(
        len in 0usize..257,
        ops in prop::collection::vec((0usize..3, 0usize..300, 0usize..300, 1usize..5), 1..7),
    ) {
        drive(len, &ops);
    }
}

#[test]
fn mixed_type_backings_validate_once_per_type() {
    // A second type on the same *value* (an f64 column) lives in its own
    // backing: per-backing counts stay per-type, and a mismatched accessor
    // never publishes (the cache stays cold through type errors).
    let ints = Column::from_i64(vec![1, 2, 3]);
    assert!(ints.f64_values().is_err(), "mismatched accessor must fail");
    assert_eq!(ints.backing_validations(), 0, "a failed access must not validate");
    ints.i64_values().unwrap();
    ints.i64_values().unwrap();
    ints.slice(1, 2).unwrap().i64_values().unwrap();
    assert_eq!(ints.backing_validations(), 1);

    let floats = Column::from_f64(vec![0.5, -1.25]);
    floats.f64_values().unwrap();
    assert_eq!(floats.backing_validations(), 1);
    assert!(floats.i64_values().is_err());
    assert_eq!(floats.backing_validations(), 1, "a failed access after warm must not re-validate");
}

#[test]
fn empty_and_degenerate_windows_round_trip() {
    // Shapes at the edge of the sampled space: zero-length builds, empty
    // cuts of warm backings, single-row grids.
    drive(0, &[(2, 0, 0, 4), (1, 3, 0, 2), (0, 5, 9, 1)]);
    drive(1, &[(1, 1, 1, 1), (2, 0, 0, 3)]);
    let col = Column::from_i64(vec![9, 8, 7]);
    col.i64_values().unwrap();
    let empty = col.slice(3, 0).unwrap();
    assert_eq!(empty.i64_values().unwrap(), &[] as &[i64]);
    assert_eq!(empty.base_oid(), 3);
    assert_eq!(col.backing_validations(), 1);
}
