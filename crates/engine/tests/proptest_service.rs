//! Property test for the service layer: arbitrary interleavings of session
//! submit / close / reconnect with cache churn (tiny cache bounds, explicit
//! invalidation) must never change a result — every successful submission
//! returns exactly what a direct `Engine` execution of the same plan
//! returns, and closed sessions only ever fail with `SessionClosed`.

use std::sync::Arc;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, TableBuilder};
use apq_engine::plan::{OperatorSpec, Plan};
use apq_engine::{Engine, EngineConfig, EngineError, QueryOutput, QueryService, ServiceConfig};
use apq_operators::{AggFunc, CmpOp, Predicate};
use proptest::prelude::*;

const ROWS: usize = 2_000;
const THRESHOLDS: [i64; 3] = [101, 353, 997];

fn catalog() -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("a", (0..ROWS as i64).map(|v| (v * 7919) % 1000).collect())
            .i64_column("b", (0..ROWS as i64).map(|v| v % 101).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

/// sum(b) where a < threshold.
fn sum_plan(threshold: i64) -> Plan {
    let mut p = Plan::new();
    let a = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "a".into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    );
    let b = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "b".into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    );
    let sel =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
    let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random op sequences over 3 sessions × 3 plans with 2-entry caches:
    /// submissions (op 0–2), closes (op 3), reconnects (op 4) and
    /// table invalidation (op 5) interleave freely; results never drift
    /// from the direct-engine reference.
    #[test]
    fn interleaved_sessions_and_cache_churn_never_change_results(
        ops in prop::collection::vec((0usize..6, 0usize..3, 0usize..3), 1..24),
    ) {
        let cat = catalog();

        // Reference outputs from a plain engine, no service machinery.
        let reference_engine = Engine::with_workers(2);
        let reference: Vec<QueryOutput> = THRESHOLDS
            .iter()
            .map(|&t| reference_engine.execute(&sum_plan(t), &cat).unwrap().output)
            .collect();

        // Tiny caches so the op sequence constantly evicts and re-fills.
        let service = QueryService::new(
            ServiceConfig::with_engine(EngineConfig::with_workers(2))
                .with_plan_cache_capacity(2)
                .with_result_cache_capacity(2),
            Arc::clone(&cat),
        );
        let mut sessions: Vec<_> = (0..3).map(|_| service.connect()).collect();

        for (op, s, q) in ops {
            match op {
                0..=2 => {
                    let result = sessions[s].submit(&sum_plan(THRESHOLDS[q]));
                    if sessions[s].is_closed() {
                        prop_assert_eq!(result.unwrap_err(), EngineError::SessionClosed);
                    } else {
                        let response = result.unwrap();
                        prop_assert_eq!(&response.output, &reference[q]);
                        // Cache hits must never hand back an executing
                        // profile, and vice versa.
                        prop_assert_eq!(
                            response.profile.is_none(),
                            response.result_cache_hit
                        );
                    }
                }
                3 => sessions[s].close(),
                4 => sessions[s] = service.connect(),
                _ => {
                    service.invalidate_table("t");
                }
            }
        }

        // The census drains: no reservations survive their submissions.
        prop_assert!(service.engine().active_queries().is_empty());
        let stats = service.stats();
        prop_assert_eq!(
            stats.result_cache_hits + stats.result_cache_misses,
            stats.queries
        );
    }
}
