//! Directed regression tests for the service robustness layer: deadline
//! results never reach the result cache, `close()` wakes queued
//! submitters immediately, the overload policy sheds lowest-priority
//! first, and `try_submit` never blocks. Companion to the randomized
//! `proptest_faults.rs`; the failure taxonomy lives in
//! `docs/architecture.md` §9.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, ScalarValue, TableBuilder};
use apq_engine::plan::{OperatorSpec, Plan};
use apq_engine::{EngineConfig, EngineError, QueryOutput, QueryService, ServiceConfig, Session};
use apq_operators::{AggFunc, CmpOp, Predicate};

const ROWS: usize = 2_000;

fn catalog() -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("a", (0..ROWS as i64).map(|v| (v * 7919) % 1000).collect())
            .i64_column("b", (0..ROWS as i64).map(|v| v % 101).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

/// sum(b) where a < threshold — six nodes, so per-operator overhead adds up
/// to a predictable execution time.
fn sum_plan(threshold: i64) -> Plan {
    let mut p = Plan::new();
    let a = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "a".into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    );
    let b = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "b".into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    );
    let sel =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
    let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    p
}

/// A service whose every operator takes ~`overhead_ms`, so queries run long
/// enough to race closes/deadlines against deterministically.
fn slow_service(overhead_ms: u64, max_queued: usize) -> QueryService {
    let engine = EngineConfig {
        per_operator_overhead_us: overhead_ms * 1_000,
        ..EngineConfig::with_workers(2)
    };
    QueryService::new(ServiceConfig::with_engine(engine).with_max_queued(max_queued), catalog())
}

/// Polls until `cond` holds, failing after a generous watchdog.
fn await_condition(label: &str, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < Duration::from_secs(20), "timed out waiting for {label}");
        thread::yield_now();
    }
}

#[test]
fn timed_out_partial_outcome_is_never_served_to_the_next_submission() {
    // ~20ms per operator: a 5ms deadline expires mid-execution, after
    // dispatch began. The aborted query's partial state must not be
    // cached: the identical follow-up submission must really execute and
    // return the correct bytes.
    let service = slow_service(20, 0);
    let session = service.connect();
    let plan = sum_plan(353);

    let err = session
        .submit_with_deadline(&plan, Duration::from_millis(5))
        .expect_err("a 5ms deadline cannot survive ~120ms of operator overhead");
    assert_eq!(err, EngineError::DeadlineExceeded);
    assert_eq!(service.stats().timed_out, 1);
    assert_eq!(service.result_cache_len(), 0, "timed-out outcome reached the result cache");

    let retry = session.submit(&plan).expect("fresh submission executes");
    assert!(!retry.result_cache_hit, "nothing may have been cached by the timed-out run");
    assert!(retry.profile.is_some(), "the retry really executed");

    // Sanity: the retry's output matches an overhead-free reference.
    let reference = QueryService::new(ServiceConfig::default(), catalog());
    let expected = reference.connect().submit(&plan).unwrap().output;
    assert_eq!(retry.output, expected);

    // An already-expired deadline fails even though the result is now
    // cached: a passed deadline is never answered, not even for free.
    let expired = session.submit_with_deadline(&plan, Duration::ZERO);
    assert_eq!(expired.unwrap_err(), EngineError::DeadlineExceeded);
    assert_eq!(service.stats().timed_out, 2);
}

#[test]
fn close_wakes_queued_submitters_immediately() {
    // Thread A holds the session's turn with a ~120ms query; thread B
    // queues behind it. Closing the session must wake B with
    // SessionClosed right away — not after A's query drains.
    let service = slow_service(20, 0);
    let session = service.connect();
    let plan = sum_plan(353);

    let a = {
        let (session, plan) = (session.clone(), plan.clone());
        thread::spawn(move || {
            let started = Instant::now();
            (session.submit(&plan), started.elapsed())
        })
    };
    // B queues only once A holds the turn (a query is live in the engine).
    await_condition("A's query to go live", || !service.engine().active_queries().is_empty());
    let b = {
        let (session, plan) = (session.clone(), plan.clone());
        thread::spawn(move || {
            let started = Instant::now();
            (session.submit(&plan), started.elapsed())
        })
    };
    await_condition("B to join the queue", || service.queued() == 1);

    session.close();
    let (b_result, b_elapsed) = b.join().unwrap();
    let (a_result, _a_elapsed) = a.join().unwrap();

    assert_eq!(b_result.unwrap_err(), EngineError::SessionClosed);
    // Close also cancelled A's in-flight query.
    assert_eq!(a_result.unwrap_err(), EngineError::Cancelled);
    // "Immediately": had B been granted the turn and executed, its
    // submission would have spent ≥120ms in operator overhead. Waking
    // with SessionClosed must not involve running anything.
    assert!(
        b_elapsed < Duration::from_millis(60),
        "B took {b_elapsed:?} to observe the close — it ran instead of waking"
    );
    assert_eq!(service.queued(), 0, "the queued census retained a woken waiter");
}

/// Spawns a submission on `session` once `ready` says the queue reached the
/// expected shape, returning the join handle.
fn submit_async(
    session: &Session,
    plan: &Plan,
) -> thread::JoinHandle<Result<apq_engine::ServiceResponse, EngineError>> {
    let (session, plan) = (session.clone(), plan.clone());
    thread::spawn(move || session.submit(&plan))
}

#[test]
fn overload_sheds_the_lowest_priority_waiter_first() {
    // Queue bound 1. Low-priority session A: one running submission plus
    // one queued waiter (census full). When a high-priority waiter needs
    // the slot, A's queued waiter is shed with Overloaded; the
    // high-priority one proceeds.
    let service = slow_service(20, 1);
    let low = service.connect(); // priority 0
    let high = service.connect_with_priority(3);
    let plan = sum_plan(353);

    let low_running = submit_async(&low, &plan);
    await_condition("low query to go live", || !service.engine().active_queries().is_empty());
    let low_queued = submit_async(&low, &plan);
    await_condition("low waiter to queue", || service.queued() == 1);

    // Fill high's turn, then queue a second high submission: it needs a
    // census slot, the census is full, and the only queued waiter is
    // lower-priority — shed it.
    let high_running = submit_async(&high, &plan);
    await_condition("high query to go live", || service.engine().active_queries().len() == 2);
    let high_queued = submit_async(&high, &plan);

    let shed = low_queued.join().unwrap().expect_err("the low-priority waiter must be shed");
    match shed {
        EngineError::Overloaded { retry_after_hint } => {
            assert!(
                retry_after_hint >= Duration::from_millis(1),
                "hint below the 1ms floor: {retry_after_hint:?}"
            );
        }
        other => panic!("expected Overloaded, got {other}"),
    }

    for handle in [low_running, high_running, high_queued] {
        handle.join().unwrap().expect("surviving submissions complete normally");
    }
    let stats = service.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(service.queued(), 0);
    assert!(service.engine().active_queries().is_empty());
}

#[test]
fn newcomer_is_refused_when_nothing_queued_outranks_it() {
    // Same-bound scenario, but the newcomer has the same priority as the
    // queued waiter: nothing outranks it, so the *newcomer* gets
    // Overloaded and the queue is untouched.
    let service = slow_service(20, 1);
    let session = service.connect();
    let plan = sum_plan(353);

    let running = submit_async(&session, &plan);
    await_condition("query to go live", || !service.engine().active_queries().is_empty());
    let queued = submit_async(&session, &plan);
    await_condition("waiter to queue", || service.queued() == 1);

    let refused = session.submit(&plan).expect_err("the census is full");
    assert!(matches!(refused, EngineError::Overloaded { .. }), "got {refused}");
    assert_eq!(service.queued(), 1, "the refusal must not evict the equal-priority waiter");

    running.join().unwrap().expect("running submission completes");
    queued.join().unwrap().expect("queued submission completes");
    assert_eq!(service.stats().shed, 1);
}

#[test]
fn try_submit_refuses_instead_of_queueing() {
    let service = slow_service(20, 0);
    let session = service.connect();
    let plan = sum_plan(353);

    // Idle session: try_submit executes like submit.
    let first = session.try_submit(&plan).expect("idle session accepts try_submit");
    assert!(matches!(first.output, QueryOutput::Scalar(ScalarValue::I64(_))));

    // Busy session: try_submit returns Overloaded without waiting.
    service.invalidate_results(); // force the next submissions to execute
    let running = submit_async(&session, &plan);
    await_condition("query to go live", || !service.engine().active_queries().is_empty());
    let started = Instant::now();
    let refused = session.try_submit(&plan).expect_err("busy session refuses try_submit");
    let elapsed = started.elapsed();
    assert!(matches!(refused, EngineError::Overloaded { .. }), "got {refused}");
    assert!(
        elapsed < Duration::from_millis(50),
        "try_submit blocked for {elapsed:?} instead of refusing immediately"
    );
    running.join().unwrap().expect("running submission completes");
    assert_eq!(service.stats().shed, 1);
}

#[test]
fn cancelled_submissions_never_reach_the_result_cache() {
    // A close that races a running submission cancels it; the cancelled
    // outcome must not be cached for the next client.
    let service = slow_service(20, 0);
    let session = service.connect();
    let plan = sum_plan(101);

    let running = submit_async(&session, &plan);
    await_condition("query to go live", || !service.engine().active_queries().is_empty());
    session.close();
    assert_eq!(running.join().unwrap().unwrap_err(), EngineError::Cancelled);
    assert_eq!(service.result_cache_len(), 0, "cancelled outcome reached the result cache");

    // A fresh session re-executes and gets the true result.
    let fresh = service.connect();
    let response = fresh.submit(&plan).expect("fresh session executes");
    assert!(!response.result_cache_hit);
    assert!(matches!(response.output, QueryOutput::Scalar(ScalarValue::I64(_))));
}
