//! Property tests for windowed stream views: random nested
//! `SlicePart` / `ExchangeUnion` sequences over candidate and join streams —
//! odd offsets, empty windows, non-divisible morsel sizes, fresh-backing
//! parts mixed into unions — must match a materializing reference
//! implementation exactly, including the derived `stream_base` labels.
//!
//! The reference keeps a plain `Vec` plus an explicit stream offset and
//! re-materializes on every cut (what the engine did before the view
//! rewrite); the engine path goes through `execute_node`, exercising the
//! zero-copy window arithmetic, the contiguous-windows union fast path and
//! the borrowed-slice fallback pack.

use apq_columnar::{Catalog, Oid};
use apq_engine::interpreter::execute_node;
use apq_engine::plan::OperatorSpec;
use apq_engine::Chunk;
use apq_operators::JoinResult;
use proptest::prelude::*;

/// Materializing reference for an oid stream: owned data + stream offset.
#[derive(Debug, Clone, PartialEq)]
struct RefStream {
    outer: Vec<Oid>,
    /// Parallel inner side; empty for plain candidate streams.
    inner: Vec<Oid>,
    base: Oid,
}

impl RefStream {
    fn slice(&self, start: usize, len: usize) -> RefStream {
        let end = start.saturating_add(len).min(self.outer.len());
        let start = start.min(end);
        RefStream {
            outer: self.outer[start..end].to_vec(),
            inner: if self.inner.is_empty() { vec![] } else { self.inner[start..end].to_vec() },
            base: self.base + start as Oid,
        }
    }
}

fn slice_chunk(cat: &Catalog, chunk: &Chunk, start: usize, len: usize) -> Chunk {
    execute_node(0, &OperatorSpec::SlicePart { start, len }, std::slice::from_ref(chunk), cat)
        .unwrap()
}

fn union_chunks(cat: &Catalog, parts: &[Chunk]) -> Chunk {
    execute_node(1, &OperatorSpec::ExchangeUnion, parts, cat).unwrap()
}

/// Asserts the engine chunk matches the reference: same values (via the
/// comparable `QueryOutput`) and same stream offset label.
fn assert_matches(chunk: &Chunk, reference: &RefStream) {
    match chunk {
        Chunk::Oids(v) => {
            assert_eq!(v.as_slice(), &reference.outer[..], "oid window values diverged");
            assert_eq!(v.stream_base(), reference.base, "stream_base diverged");
            assert_eq!(v.len(), reference.outer.len());
        }
        Chunk::Join(v) => {
            assert_eq!(v.outer(), &reference.outer[..], "join outer window diverged");
            assert_eq!(v.inner(), &reference.inner[..], "join inner window diverged");
            assert_eq!(v.stream_base(), reference.base, "stream_base diverged");
        }
        other => panic!("unexpected chunk kind {}", other.kind()),
    }
}

/// Cuts `chunk` into ceil(len / morsel) grid parts (the morsel decomposition,
/// last part ragged), optionally re-materializing every odd part into fresh
/// backing at the correct stream offset — which forces the union's fallback
/// pack path instead of the widening fast path.
fn grid_parts(cat: &Catalog, chunk: &Chunk, morsel: usize, rematerialize_odd: bool) -> Vec<Chunk> {
    let rows = chunk.rows();
    let n = rows.div_ceil(morsel).max(1);
    (0..n)
        .map(|i| {
            let part = slice_chunk(cat, chunk, i * morsel, morsel);
            if rematerialize_odd && i % 2 == 1 {
                match &part {
                    Chunk::Oids(v) => Chunk::oids_at(v.as_slice().to_vec(), v.stream_base()),
                    Chunk::Join(v) => Chunk::join_at(
                        JoinResult {
                            outer_oids: v.outer().to_vec(),
                            inner_oids: v.inner().to_vec(),
                        },
                        v.stream_base(),
                    ),
                    other => panic!("unexpected chunk kind {}", other.kind()),
                }
            } else {
                part
            }
        })
        .collect()
}

/// Drives one random op sequence over both an oid stream and a join stream.
fn drive(len: usize, ops: &[(usize, usize, usize, usize)]) {
    let cat = Catalog::new();
    let mut cases: Vec<(Chunk, RefStream)> = vec![
        (
            Chunk::oids((0..len as Oid).map(|v| v * 3 + 7).collect()),
            RefStream {
                outer: (0..len as Oid).map(|v| v * 3 + 7).collect(),
                inner: vec![],
                base: 0,
            },
        ),
        (
            Chunk::join(JoinResult {
                outer_oids: (0..len as Oid).collect(),
                inner_oids: (0..len as Oid).map(|v| v ^ 5).collect(),
            }),
            RefStream {
                outer: (0..len as Oid).collect(),
                inner: (0..len as Oid).map(|v| v ^ 5).collect(),
                base: 0,
            },
        ),
    ];

    for &(kind, a, b, k) in ops {
        for (chunk, reference) in cases.iter_mut() {
            let rows = chunk.rows();
            match kind {
                // Nested positional cut, offsets/lengths deliberately allowed
                // past the end (clamping must agree with the reference).
                0 => {
                    let start = if rows == 0 { a } else { a % (rows + 3) };
                    *chunk = slice_chunk(&cat, chunk, start, b);
                    *reference = reference.slice(start, b);
                }
                // Morsel-grid split + union round-trip: all parts are
                // consecutive windows, so the fast path must return the
                // parent window (same backing) and the identical value.
                1 => {
                    let morsel = (a % (rows + 2)).max(1);
                    let parts = grid_parts(&cat, chunk, morsel, false);
                    let reunited = union_chunks(&cat, &parts);
                    match (&reunited, &*chunk) {
                        (Chunk::Oids(u), Chunk::Oids(c)) => {
                            assert!(u.shares_backing_with(c), "fast path did not engage")
                        }
                        (Chunk::Join(u), Chunk::Join(c)) => {
                            assert!(u.shares_backing_with(c), "fast path did not engage")
                        }
                        _ => panic!("union changed chunk kind"),
                    }
                    *chunk = reunited;
                }
                // Same split, but odd parts re-materialized into fresh
                // backing: heterogeneous parts, fallback pack path. Values
                // and stream labels must still round-trip (unless every part
                // stayed windowed because there was only one).
                _ => {
                    let morsel = (b % (rows + 2)).max(1);
                    let parts = grid_parts(&cat, chunk, morsel, true);
                    *chunk = union_chunks(&cat, &parts);
                }
            }
            assert_matches(chunk, reference);
        }
        let _ = k;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn nested_slice_union_matches_materializing_reference(
        len in 0usize..257,
        ops in prop::collection::vec((0usize..3, 0usize..300, 0usize..300, 1usize..5), 1..7),
    ) {
        drive(len, &ops);
    }
}

#[test]
fn empty_stream_round_trips() {
    // Degenerate shapes outside the sampled space: zero-length streams and
    // windows entirely past the end.
    drive(0, &[(0, 5, 9, 1), (1, 3, 0, 2), (2, 0, 4, 3)]);
    let cat = Catalog::new();
    let chunk = Chunk::oids(vec![1, 2, 3]);
    let empty = slice_chunk(&cat, &chunk, 50, 10);
    assert_eq!(empty.rows(), 0);
    assert_eq!(empty.as_oids_view().unwrap().stream_base(), 3);
}
