//! Service-layer behavior: session lifecycle, the unified admission path,
//! and plan/result cache correctness (hits byte-identical to cold
//! execution, bounds respected, invalidation selective).

use std::sync::Arc;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, ScalarValue, TableBuilder};
use apq_engine::plan::{OperatorSpec, Plan};
use apq_engine::{DopPhase, EngineConfig, EngineError, QueryOutput, QueryService, ServiceConfig};
use apq_operators::{AggFunc, CmpOp, Predicate};

fn catalog_with(rows: usize, scale: i64) -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("a", (0..rows as i64).collect())
            .i64_column("b", (0..rows as i64).map(|v| v * scale).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

fn catalog(rows: usize) -> Arc<Catalog> {
    catalog_with(rows, 2)
}

/// sum(b) where a < threshold.
fn sum_plan(rows: usize, threshold: i64) -> Plan {
    let mut p = Plan::new();
    let a = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "a".into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    );
    let b = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "b".into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    );
    let sel =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
    let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    p
}

fn expected_sum(threshold: i64) -> QueryOutput {
    QueryOutput::Scalar(ScalarValue::I64((0..threshold).map(|v| v * 2).sum()))
}

fn service(config: ServiceConfig) -> QueryService {
    QueryService::new(config, catalog(10_000))
}

#[test]
fn submissions_run_under_reserved_census_slots() {
    let svc = service(ServiceConfig::with_engine(EngineConfig::with_workers(2)));
    let session = svc.connect();
    let response = session.submit(&sum_plan(10_000, 500)).unwrap();
    assert_eq!(response.output, expected_sum(500));
    let profile = response.profile.expect("cold submissions execute");
    // The unified admission path: the query lived as a reservation first.
    let phases: Vec<DopPhase> = profile.dop_timeline.iter().map(|e| e.phase).collect();
    assert_eq!(phases[0], DopPhase::Reserve);
    assert!(phases.contains(&DopPhase::Submit));
    // A lone client gets the whole pool at admit time.
    assert_eq!(profile.dop_timeline[0].dop, 2);
    // The reservation was released once the submission finished.
    assert!(svc.engine().active_queries().is_empty());
}

#[test]
fn admission_disabled_runs_uncapped() {
    let svc =
        service(ServiceConfig::with_engine(EngineConfig::with_workers(2)).with_admission(false));
    let session = svc.connect();
    let response = session.submit(&sum_plan(10_000, 500)).unwrap();
    assert_eq!(response.output, expected_sum(500));
    let profile = response.profile.unwrap();
    assert_eq!(profile.dop_timeline[0].phase, DopPhase::Admit);
    assert_eq!(profile.dop_timeline[0].dop, 0, "no admission cap");
}

#[test]
fn plan_cache_hits_are_byte_identical_to_cold_execution() {
    // Result cache off so the second submission re-executes through the
    // cached shared plan instead of short-circuiting.
    let svc = service(
        ServiceConfig::with_engine(EngineConfig::with_workers(2)).with_result_cache_capacity(0),
    );
    let session = svc.connect();
    let plan = sum_plan(10_000, 777);

    let cold = session.submit(&plan).unwrap();
    assert!(!cold.plan_cache_hit);
    assert!(!cold.result_cache_hit);

    let warm = session.submit(&plan).unwrap();
    assert!(warm.plan_cache_hit, "second submission must reuse the cached plan");
    assert!(!warm.result_cache_hit);
    assert_eq!(warm.output, cold.output, "plan-cache hit changed the result");
    assert!(warm.profile.is_some(), "plan-cache hits still execute");

    let stats = svc.stats();
    assert_eq!(stats.plan_cache_hits, 1);
    assert_eq!(stats.plan_cache_misses, 1);
    assert_eq!(svc.plan_cache_len(), 1);
}

#[test]
fn result_cache_hits_skip_execution_and_match_cold_output() {
    let svc = service(ServiceConfig::with_engine(EngineConfig::with_workers(2)));
    let session = svc.connect();
    let plan = sum_plan(10_000, 250);

    let cold = session.submit(&plan).unwrap();
    let hit = session.submit(&plan).unwrap();
    assert!(hit.result_cache_hit);
    assert!(hit.profile.is_none(), "cache hits do not execute");
    assert_eq!(hit.output, cold.output);

    // Distinct constants are distinct keys: no false sharing.
    let other = session.submit(&sum_plan(10_000, 251)).unwrap();
    assert!(!other.result_cache_hit);
    assert_eq!(other.output, QueryOutput::Scalar(ScalarValue::I64((0..251).map(|v| v * 2).sum())));

    let stats = svc.stats();
    assert_eq!(stats.result_cache_hits, 1);
    assert_eq!(stats.result_cache_misses, 2);
    assert_eq!(stats.queries, 3);
}

#[test]
fn result_cache_respects_bounds_and_invalidation() {
    let svc = service(
        ServiceConfig::with_engine(EngineConfig::with_workers(2)).with_result_cache_capacity(2),
    );
    let session = svc.connect();

    for threshold in [100, 200, 300] {
        session.submit(&sum_plan(10_000, threshold)).unwrap();
    }
    assert_eq!(svc.result_cache_len(), 2, "bounded cache must evict");
    // The oldest entry (100) was evicted; the newer two still hit.
    assert!(!session.submit(&sum_plan(10_000, 100)).unwrap().result_cache_hit);
    assert!(session.submit(&sum_plan(10_000, 300)).unwrap().result_cache_hit);

    // Per-table invalidation drops every entry computed from "t".
    let dropped = svc.invalidate_table("t");
    assert_eq!(dropped, 2);
    assert_eq!(svc.result_cache_len(), 0);
    assert!(!session.submit(&sum_plan(10_000, 300)).unwrap().result_cache_hit);
    assert_eq!(svc.stats().results_invalidated, 2);

    // Invalidating an unrelated table drops nothing.
    assert_eq!(svc.invalidate_table("unrelated"), 0);
    assert!(session.submit(&sum_plan(10_000, 300)).unwrap().result_cache_hit);
}

#[test]
fn replacing_the_catalog_invalidates_results() {
    let svc = service(ServiceConfig::with_engine(EngineConfig::with_workers(2)));
    let session = svc.connect();
    let plan = sum_plan(10_000, 400);

    let before = session.submit(&plan).unwrap();
    assert_eq!(before.output, expected_sum(400));

    // Same table name, different data (b = 3a instead of 2a): a stale
    // cached result would now be wrong.
    svc.replace_catalog(catalog_with(10_000, 3));
    let after = session.submit(&plan).unwrap();
    assert!(!after.result_cache_hit, "stale results must not survive a catalog swap");
    assert_eq!(after.output, QueryOutput::Scalar(ScalarValue::I64((0..400).map(|v| v * 3).sum())));
}

#[test]
fn closed_sessions_reject_submissions_and_clones_share_the_close() {
    let svc = service(ServiceConfig::with_engine(EngineConfig::with_workers(2)));
    let session = svc.connect();
    let clone = session.clone();
    assert_eq!(session.id(), clone.id());

    session.submit(&sum_plan(10_000, 100)).unwrap();
    clone.close();
    assert!(session.is_closed());
    assert_eq!(session.submit(&sum_plan(10_000, 100)).unwrap_err(), EngineError::SessionClosed);
    // Idempotent: a second close (and drops) do not double-count.
    session.close();
    drop(session);
    drop(clone);
    let stats = svc.stats();
    assert_eq!(stats.sessions_opened, 1);
    assert_eq!(stats.sessions_closed, 1);
}

#[test]
fn sessions_are_independent_and_share_the_caches() {
    let svc = service(ServiceConfig::with_engine(EngineConfig::with_workers(2)));
    let a = svc.connect();
    let b = svc.connect_with_priority(1);
    assert_ne!(a.id(), b.id());
    assert_eq!(b.priority(), 1);

    let plan = sum_plan(10_000, 600);
    let cold = a.submit(&plan).unwrap();
    // Session B hits the shared result cache warmed by A.
    let warm = b.submit(&plan).unwrap();
    assert!(warm.result_cache_hit);
    assert_eq!(warm.output, cold.output);

    // Closing A does not affect B.
    a.close();
    assert!(!b.is_closed());
    assert!(b.submit(&plan).unwrap().result_cache_hit);
}

#[test]
fn concurrent_submissions_through_one_session_serialize_safely() {
    let svc = service(ServiceConfig::with_engine(EngineConfig::with_workers(2)));
    let session = svc.connect();
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let session = session.clone();
            std::thread::spawn(move || {
                let threshold = 100 + (i % 2) * 100; // two distinct queries
                session.submit(&sum_plan(10_000, threshold)).map(|r| (threshold, r))
            })
        })
        .collect();
    for t in threads {
        let (threshold, response) = t.join().unwrap().unwrap();
        assert_eq!(
            response.output,
            QueryOutput::Scalar(ScalarValue::I64((0..threshold).map(|v| v * 2).sum()))
        );
    }
    assert_eq!(svc.stats().queries, 4);
    assert!(svc.engine().active_queries().is_empty());
}
