//! Unified-census regression tests: a ticket *is* a registry reservation.
//!
//! **The pre-PR double census these tests pin against.** Admission used to
//! live only in the baselines crate's `AdmissionController`, which counted
//! active clients in its own `AtomicUsize`, while the engine's live-query
//! registry gained an entry only inside `execute_with_handle`. A client
//! holding a ticket but *not yet submitted* was therefore invisible to
//! [`Engine::active_queries`] and to controller ticks, and the two
//! censuses disagreed for the whole ticket-held window:
//!
//! * `reservation_is_census_visible_before_submission` fails against that
//!   design at its first assertion — `active_queries()` was empty until
//!   submission, no matter how many tickets were outstanding.
//! * `admit_and_regrant_targets_agree_during_submission_delay` fails
//!   against that design because a controller tick taken inside the
//!   disagreement window saw only the *submitted* queries: with one query
//!   running and one ticket held, the tick counted 1 governed query and
//!   re-granted the runner the whole pool (`total/1`) at the same moment
//!   the admission layer had computed the ticket holder's grant as
//!   `total/2` — two targets from two populations. With the unified
//!   census both targets are `max(1, total/2)` computed from the same
//!   registry snapshot, and the disagreement window does not exist.

use std::sync::Arc;
use std::time::Duration;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, ScalarValue, TableBuilder};
use apq_engine::controller::ControllerConfig;
use apq_engine::plan::{OperatorSpec, Plan};
use apq_engine::{DopPhase, Engine, EngineConfig, QueryOptions, QueryOutput};
use apq_operators::{AggFunc, CmpOp, Predicate};

fn catalog(rows: usize) -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("a", (0..rows as i64).collect())
            .i64_column("b", (0..rows as i64).map(|v| v * 2).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

fn sum_plan(rows: usize, threshold: i64) -> Plan {
    let mut p = Plan::new();
    let a = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "a".into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    );
    let b = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "b".into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    );
    let sel =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
    let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    p
}

fn expected_sum(threshold: i64) -> QueryOutput {
    QueryOutput::Scalar(ScalarValue::I64((0..threshold).map(|v| v * 2).sum()))
}

/// A dormant background thread: every tick in these tests is forced.
fn manual_controller() -> ControllerConfig {
    ControllerConfig::default().with_tick(Duration::from_secs(3_600)).with_adaptive_morsels(false)
}

#[test]
fn reservation_is_census_visible_before_submission() {
    let engine = Engine::with_workers(2);
    assert!(engine.active_queries().is_empty());

    // Issue a ticket; nothing has been submitted.
    let reservation = engine.reserve_query(QueryOptions::with_admitted_dop(2));
    let census = engine.active_queries();
    assert_eq!(census.len(), 1, "a held ticket must be census-visible from issue time");
    assert_eq!(census[0].id(), reservation.id());
    assert_eq!(engine.in_flight_queries(), 0, "visible, but not executing");

    // The initial timeline event is the reservation-phase grant.
    let timeline = reservation.handle().dop_timeline();
    assert_eq!(timeline.len(), 1);
    assert_eq!(timeline[0].phase, DopPhase::Reserve);
    assert_eq!(timeline[0].dop, 2);

    // Releasing the ticket releases the census slot.
    drop(reservation);
    assert!(engine.active_queries().is_empty());
}

#[test]
fn admit_and_regrant_targets_agree_during_submission_delay() {
    let engine = Engine::new(EngineConfig::with_workers(4).with_controller(manual_controller()));

    // Client A is admitted alone: the whole pool.
    let a = engine.reserve_admitted(0, 0);
    assert_eq!(a.handle().admitted_dop(), 4);

    // Client B is admitted while A's ticket is outstanding: the equal
    // share over the *same census* A lives in.
    let b = engine.reserve_admitted(0, 0);
    assert_eq!(b.handle().admitted_dop(), 2);

    // The disagreement window of the old design: both tickets held, neither
    // submitted. A tick taken now must compute its re-grant target from
    // the same two-query population the admit targets came from — one
    // census, one target.
    let report = engine.controller_tick();
    assert_eq!(report.governed, 2, "both unsubmitted tickets are counted");
    assert_eq!(report.dop_changes, 1, "only A (admitted at 4) is clawed to the shared target");
    assert_eq!(a.handle().admitted_dop(), 2, "tick target equals B's admit target");
    assert_eq!(b.handle().admitted_dop(), 2, "admit grant already was the tick target");

    // Idempotent: re-ticking an unchanged population writes nothing.
    assert_eq!(engine.controller_tick().dop_changes, 0);

    // A departs; the next tick re-grants B from the shrunken census.
    drop(a);
    let report = engine.controller_tick();
    assert_eq!(report.governed, 1);
    assert_eq!(report.dop_changes, 1);
    assert_eq!(b.handle().admitted_dop(), 4);
}

#[test]
fn reservation_stays_registered_across_repeated_submissions() {
    let engine = Engine::with_workers(2);
    let cat = catalog(5_000);
    let plan = Arc::new(sum_plan(5_000, 300));

    let reservation = engine.reserve_admitted(0, 0);
    let first = engine.execute_with_handle(&plan, &cat, reservation.handle()).unwrap();
    assert_eq!(first.output, expected_sum(300));
    assert_eq!(
        engine.active_queries().len(),
        1,
        "execution completion must not unregister a held reservation"
    );

    let second = engine.execute_with_handle(&plan, &cat, reservation.handle()).unwrap();
    assert_eq!(second.output, first.output);

    // The timeline shows the whole lifecycle: one Reserve grant, then one
    // Submit event per execution under the ticket.
    let phases: Vec<DopPhase> = second.profile.dop_timeline.iter().map(|e| e.phase).collect();
    assert_eq!(phases, vec![DopPhase::Reserve, DopPhase::Submit, DopPhase::Submit]);

    drop(reservation);
    assert!(engine.active_queries().is_empty());
}

#[test]
fn admit_targets_shrink_with_census_and_respect_explicit_pool() {
    let engine = Engine::with_workers(2);
    // Explicit pool of 8, independent of the worker count.
    let reservations: Vec<_> = (0..5).map(|_| engine.reserve_admitted(0, 8)).collect();
    let grants: Vec<usize> = reservations.iter().map(|r| r.handle().admitted_dop()).collect();
    assert_eq!(grants, vec![8, 4, 2, 2, 1], "equal shares of 8 over a growing census");
    assert_eq!(engine.active_queries().len(), 5);

    // Uncapped and cancelled reservations are census entries but not
    // governed: they do not shrink later admit targets.
    drop(reservations);
    let unlimited = engine.reserve_query(QueryOptions::default());
    assert_eq!(unlimited.handle().admitted_dop(), 0);
    let cancelled = engine.reserve_query(QueryOptions::with_admitted_dop(3));
    cancelled.handle().cancel();
    let governed = engine.reserve_admitted(0, 8);
    assert_eq!(
        governed.handle().admitted_dop(),
        8,
        "ungoverned census entries must not dilute the admit share"
    );
}
