//! Property test for the robustness layer: random fault schedules and
//! deadline placements over the service submit path. Whatever the chaos
//! layer injects, every submission must terminate with exactly one of
//! {result, `Cancelled`, `DeadlineExceeded`, `Overloaded`,
//! `WorkerPanicked`} — and a *result* must be byte-identical to the
//! fault-free reference (timing faults never change bytes; outcome faults
//! fail the query instead). Afterwards the live-query registry is empty
//! and the service's `timed_out` counter matches the observed outcomes.

use std::sync::Arc;
use std::time::Duration;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, TableBuilder};
use apq_engine::plan::{OperatorSpec, Plan};
use apq_engine::{
    Engine, EngineConfig, EngineError, ExecutionMode, FaultConfig, FaultKind, QueryOutput,
    QueryService, ServiceConfig,
};
use apq_operators::{AggFunc, CmpOp, Predicate};
use proptest::prelude::*;

const ROWS: usize = 2_000;
const THRESHOLDS: [i64; 3] = [101, 353, 997];

fn catalog() -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("a", (0..ROWS as i64).map(|v| (v * 7919) % 1000).collect())
            .i64_column("b", (0..ROWS as i64).map(|v| v % 101).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

/// sum(b) where a < threshold.
fn sum_plan(threshold: i64) -> Plan {
    let mut p = Plan::new();
    let a = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "a".into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    );
    let b = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "b".into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    );
    let sel =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
    let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    p
}

fn fault_config(preset: usize, seed: u64, schedule: &[(u64, usize, usize)]) -> FaultConfig {
    let mut config = match preset {
        0 => FaultConfig::quiet(seed),
        1 => FaultConfig::chaos(seed),
        _ => FaultConfig::timing_only(seed),
    };
    for &(query_id, node, kind) in schedule {
        config = config.with_scheduled(query_id, node, FaultKind::ALL[kind % FaultKind::ALL.len()]);
    }
    config
}

fn allowed(err: &EngineError) -> bool {
    matches!(
        err,
        EngineError::Cancelled
            | EngineError::DeadlineExceeded
            | EngineError::Overloaded { .. }
            | EngineError::WorkerPanicked(_)
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Ops are (variant, plan, deadline µs): variant 0 = plain submit,
    /// 1 = submit_with_deadline(deadline µs), 2 = try_submit, 3 =
    /// submit_with_deadline(0) (deterministically expired). The scheduled
    /// faults land on random (query id, node) sites — hit or miss, the
    /// outcome contract must hold.
    #[test]
    fn every_submission_terminates_with_exactly_one_sanctioned_outcome(
        ops in prop::collection::vec((0usize..4, 0usize..3, 0u64..3_000), 1..16),
        seed in 0u64..u64::MAX,
        preset in 0usize..3,
        schedule in prop::collection::vec((0u64..16, 0usize..6, 0usize..4), 0..6),
    ) {
        let cat = catalog();
        let reference_engine = Engine::with_workers(2);
        let reference: Vec<QueryOutput> = THRESHOLDS
            .iter()
            .map(|&t| reference_engine.execute(&sum_plan(t), &cat).unwrap().output)
            .collect();

        for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
            let service = QueryService::new(
                ServiceConfig::with_engine(
                    EngineConfig::with_workers(2)
                        .with_execution_mode(mode)
                        .with_morsel_rows(500)
                        .with_faults(fault_config(preset, seed, &schedule)),
                )
                .with_max_queued(4),
                Arc::clone(&cat),
            );
            let session = service.connect();
            let mut timed_out = 0u64;

            for &(variant, q, deadline_us) in &ops {
                let plan = sum_plan(THRESHOLDS[q]);
                let outcome = match variant {
                    0 => session.submit(&plan),
                    1 => session.submit_with_deadline(&plan, Duration::from_micros(deadline_us)),
                    2 => session.try_submit(&plan),
                    _ => session.submit_with_deadline(&plan, Duration::ZERO),
                };
                match &outcome {
                    // A served result is always the right result, faults
                    // or not: timing faults cannot change bytes, outcome
                    // faults fail the query instead of corrupting it.
                    Ok(response) => prop_assert_eq!(&response.output, &reference[q]),
                    Err(err) => {
                        prop_assert!(allowed(err), "unsanctioned outcome: {}", err);
                        if *err == EngineError::DeadlineExceeded {
                            timed_out += 1;
                        }
                        // Serial submissions never queue, so the overload
                        // policy has nobody to shed.
                        prop_assert!(
                            !matches!(err, EngineError::Overloaded { .. }),
                            "serial submissions cannot be shed"
                        );
                    }
                }
                // A deterministically expired deadline must time out, not
                // return a stale or partial result.
                if variant == 3 {
                    prop_assert_eq!(
                        outcome.map(|_| ()).unwrap_err(),
                        EngineError::DeadlineExceeded
                    );
                }
            }

            // The registry drains: no live query survives its submission.
            prop_assert!(service.engine().active_queries().is_empty());
            let stats = service.stats();
            prop_assert_eq!(stats.timed_out, timed_out);
            prop_assert_eq!(stats.faults_injected, service.engine().fault_stats().total());
            prop_assert_eq!(stats.shed, 0);
        }
    }
}
