//! Property tests for the pluggable scheduler: under arbitrary partition
//! counts, worker counts and scheduling policies, dataflow dependency order
//! is never violated and results are identical across policies.
//!
//! Dependency order is checked two ways:
//! * structurally — the executor fails a query loudly ("scheduled before its
//!   input completed") if a consumer ever dispatches before a producer
//!   published its chunk, so a successful run *is* evidence;
//! * temporally — every operator's profiled start must lie at or after each
//!   of its producers' profiled end (both clocks share the query's start
//!   instant).

use std::sync::Arc;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, ScalarValue, TableBuilder};
use apq_engine::plan::OperatorSpec;
use apq_engine::{Engine, EngineConfig, Plan, QueryOutput, SchedulerPolicy};
use apq_operators::{AggFunc, CmpOp, Predicate};
use proptest::prelude::*;

fn catalog(rows: usize) -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("a", (0..rows as i64).map(|v| (v * 7919) % 1000).collect())
            .i64_column("b", (0..rows as i64).map(|v| v % 101).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

/// Partitioned select/fetch/sum plan over `rows` rows in `partitions` slices
/// of uneven sizes (the `skew` knob shifts the cut points).
fn partitioned_plan(rows: usize, partitions: usize, threshold: i64, skew: usize) -> Plan {
    let mut p = Plan::new();
    let b = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "b".into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    );
    let mut aggs = Vec::new();
    let mut start = 0usize;
    for i in 0..partitions {
        let remaining = rows - start;
        let parts_left = partitions - i;
        let base = remaining / parts_left;
        // Uneven cuts: early partitions grow with `skew`, bounded so later
        // partitions keep at least one row.
        let len = if parts_left == 1 {
            remaining
        } else {
            (base + (skew % (base + 1))).min(remaining - (parts_left - 1))
        };
        let end = start + len.max(1);
        let scan = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(start, end),
            },
            vec![],
        );
        let sel = p.add(
            OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) },
            vec![scan],
        );
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        aggs.push(agg);
        start = end;
    }
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, aggs);
    p.set_root(fin);
    p
}

fn expected_sum(catalog: &Catalog, rows: usize, threshold: i64) -> i64 {
    let t = catalog.table("t").unwrap();
    let a = t.column("a").unwrap().i64_values().unwrap();
    let b = t.column("b").unwrap().i64_values().unwrap();
    (0..rows).filter(|&i| a[i] < threshold).map(|i| b[i]).sum()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Work-stealing never violates dependency order: structurally (the run
    /// succeeds) and temporally (consumers start after producers end), for
    /// arbitrary partitioning, worker counts and skews.
    #[test]
    fn dependency_order_holds_under_stealing(rows in 500usize..4_000,
                                             partitions in 1usize..12,
                                             workers in 1usize..5,
                                             threshold in 1i64..1000,
                                             skew in 0usize..1000) {
        let cat = catalog(rows);
        let plan = partitioned_plan(rows, partitions.min(rows), threshold, skew);
        plan.validate().unwrap();
        let engine = Engine::new(
            EngineConfig::with_workers(workers).with_scheduler(SchedulerPolicy::WorkStealing),
        );
        let exec = engine.execute(&plan, &cat).unwrap();
        prop_assert_eq!(
            &exec.output,
            &QueryOutput::Scalar(ScalarValue::I64(expected_sum(&cat, rows, threshold)))
        );
        // Temporal dependency check over every profiled edge.
        for node in plan.node_ids() {
            let consumer = exec.profile.operator(node).expect("every node profiled");
            for &input in &plan.node(node).unwrap().inputs {
                let producer = exec.profile.operator(input).expect("input profiled");
                prop_assert!(
                    consumer.start_us >= producer.start_us + producer.duration_us,
                    "node {} started at {}us before its input {} finished at {}us",
                    node, consumer.start_us, input,
                    producer.start_us + producer.duration_us
                );
            }
        }
    }

    /// Both policies agree with each other bit-for-bit on the query output.
    #[test]
    fn policies_agree_on_results(rows in 500usize..3_000,
                                 partitions in 1usize..10,
                                 threshold in 1i64..1000) {
        let cat = catalog(rows);
        let plan = Arc::new(partitioned_plan(rows, partitions.min(rows), threshold, 0));
        let mut outputs = Vec::new();
        for policy in SchedulerPolicy::ALL {
            let engine = Engine::new(EngineConfig::with_workers(3).with_scheduler(policy));
            outputs.push(engine.execute_shared(&plan, &cat).unwrap().output);
        }
        prop_assert_eq!(&outputs[0], &outputs[1]);
    }
}
