//! Pins the zero-copy claim of windowed stream views with a counting
//! allocator: cutting a `Chunk::Oids` / `Chunk::Join` morsel (`SlicePart`,
//! and the equivalent direct `OidsView::slice` / `JoinView::slice` calls)
//! must perform **zero** heap allocations, and reassembling consecutive
//! windows through the exchange union must stay O(parts) — never O(rows) —
//! no matter how large the stream is.
//!
//! The paper's cost model depends on this: "creating slices involves marking
//! the boundary ranges … there is no data copying involved" (§2.3). Before
//! the view rewrite, every morsel cut of a candidate stream was a
//! `to_vec`, charged once per SlicePart partition *and* per morsel.
//!
//! The same gate pins the typed-access caches on shared column blocks
//! (`docs/architecture.md` §2.2): once a backing has been validated, a typed
//! read through **any** window of it is a lock-free pointer load — zero heap
//! allocations and zero re-validations, checked against the crate's
//! validation counter.
//!
//! Everything runs in a single `#[test]` so no concurrent test body can
//! allocate while the gate is open (and no concurrent typed access can move
//! the global validation counter between our samples).

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use apq_columnar::{typed_cache_validations, Catalog, Column};
use apq_engine::interpreter::execute_node;
use apq_engine::plan::OperatorSpec;
use apq_engine::{Chunk, JoinView, OidsView};
use apq_operators::JoinResult;

/// Wraps the system allocator, counting allocations (and their bytes) made
/// while the gate is open. Deallocations are not counted: dropping an
/// `Arc`-backed view is free-ing, not allocating.
struct CountingAlloc;

static GATE: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if GATE.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if GATE.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if GATE.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the gate open; returns `(allocations, bytes)` it made.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (usize, usize) {
    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    GATE.store(true, Ordering::SeqCst);
    let out = f();
    GATE.store(false, Ordering::SeqCst);
    black_box(out);
    (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst))
}

#[test]
fn stream_view_cuts_are_alloc_free() {
    const N: usize = 1_000_000;
    let cat = Catalog::new();

    // Everything the measured closures touch is built before the gate opens.
    let oids_chunk = Chunk::oids((0..N as u64).collect());
    let join_chunk = Chunk::join(JoinResult {
        outer_oids: (0..N as u64).collect(),
        inner_oids: (0..N as u64).rev().collect(),
    });
    let oids_view = oids_chunk.as_oids_view().unwrap().clone();
    let join_view = join_chunk.as_join_view().unwrap().clone();
    let spec = OperatorSpec::SlicePart { start: 123_457, len: 64 * 1024 };

    // Direct view cuts: pure window arithmetic.
    let (allocs, _) = allocations_during(|| -> OidsView { oids_view.slice(999, 4096) });
    assert_eq!(allocs, 0, "OidsView::slice allocated");
    let (allocs, _) = allocations_during(|| -> JoinView { join_view.slice(999, 4096) });
    assert_eq!(allocs, 0, "JoinView::slice allocated");

    // The interpreter's SlicePart path (the morsel cutter) on both stream
    // kinds: still zero, through the full execute_node dispatch.
    let (allocs, _) =
        allocations_during(|| execute_node(0, &spec, std::slice::from_ref(&oids_chunk), &cat));
    assert_eq!(allocs, 0, "SlicePart over Chunk::Oids allocated");
    let (allocs, _) =
        allocations_during(|| execute_node(0, &spec, std::slice::from_ref(&join_chunk), &cat));
    assert_eq!(allocs, 0, "SlicePart over Chunk::Join allocated");

    // Reassembling consecutive windows: the union's fast path widens the
    // first window instead of packing, so its footprint is a few pointers of
    // bookkeeping (the views vec), never the 8 MB an O(rows) pack would copy.
    let parts: Vec<Chunk> = (0..4)
        .map(|i| {
            execute_node(
                0,
                &OperatorSpec::SlicePart { start: i * (N / 4), len: N / 4 },
                std::slice::from_ref(&oids_chunk),
                &cat,
            )
            .unwrap()
        })
        .collect();
    let (allocs, bytes) =
        allocations_during(|| execute_node(1, &OperatorSpec::ExchangeUnion, &parts, &cat));
    assert!(allocs <= 4, "zero-copy union made {allocs} allocations");
    assert!(bytes < 1024, "zero-copy union allocated {bytes} bytes for a {} byte stream", N * 8);

    // And the reassembled window really is the parent backing.
    let whole = execute_node(1, &OperatorSpec::ExchangeUnion, &parts, &cat).unwrap();
    let whole_view = whole.as_oids_view().unwrap();
    assert!(whole_view.shares_backing_with(oids_chunk.as_oids_view().unwrap()));
    assert_eq!(whole_view.len(), N);
    assert_eq!(whole_view.stream_base(), 0);

    // Typed-access caches on shared column blocks: the first typed read
    // below validates the backing (outside the gate); once warm, a typed
    // read through the base view *and* through a disjoint window is a
    // pointer load — no allocation, and the crate-wide validation counter
    // must not move.
    let col = Column::from_i64((0..N as i64).collect());
    let window = col.slice(123_457, 64 * 1024).unwrap();
    black_box(col.i64_values().expect("cold validation succeeds"));
    assert_eq!(col.backing_validations(), 1, "warm-up should validate exactly once");
    let validations = typed_cache_validations();
    let (allocs, _) = allocations_during(|| {
        let base = col.i64_values().expect("warm base read");
        let cut = window.i64_values().expect("warm window read");
        (base[0], cut[0])
    });
    assert_eq!(allocs, 0, "warm typed access allocated");
    assert_eq!(
        typed_cache_validations(),
        validations,
        "warm typed access re-validated a shared backing"
    );
    assert_eq!(col.backing_validations(), 1, "backing picked up a second validation");
}
